package sim

import (
	"context"
	"fmt"
	"os"

	wl "dnc/internal/cfg"
	"dnc/internal/trace"
)

// RunTrace executes a simulation whose cores replay a recorded trace
// instead of walking the workload live. The trace must have been produced
// from the same workload parameters (cmd/tracegen), because the code image
// — needed by the pre-decoder and the wrong-path model — is regenerated
// from rc.Workload. Each core starts at a different offset into the trace
// to de-correlate the replicas, and loops when the trace ends.
func RunTrace(rc RunConfig, tracePath string) (Result, error) {
	return RunTraceChecked(nil, rc, tracePath)
}

// RunTraceChecked is RunTrace with the full fault isolation of RunChecked:
// validation, panic recovery (including mid-replay trace corruption, which
// internal/trace surfaces as a typed panic), context cancellation, and the
// livelock watchdog. Every returned error is a *RunError.
func RunTraceChecked(ctx context.Context, rc RunConfig, tracePath string) (Result, error) {
	// skipStride de-correlates the replicas replaying one trace.
	const skipStride = 100_000

	return runChecked(ctx, rc, func(i int, _ *wl.Program) (wl.Stream, func(), error) {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: opening trace: %w", err)
		}
		stream, err := trace.NewStream(f, uint64(i)*skipStride)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("sim: trace stream: %w", err)
		}
		if stream.Mode() != rc.Workload.Mode {
			f.Close()
			return nil, nil, fmt.Errorf("sim: trace mode %v does not match workload mode %v",
				stream.Mode(), rc.Workload.Mode)
		}
		return stream, func() { f.Close() }, nil
	})
}

// WriteTrace renders n committed instructions of the workload to path in
// the binary trace format (the library form of cmd/tracegen).
func WriteTrace(params wl.Params, seed int64, n uint64, path string) error {
	prog := Program(params)
	walker := wl.NewWalker(prog, seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, params.Mode)
	if err != nil {
		return err
	}
	var s wl.Step
	for i := uint64(0); i < n; i++ {
		walker.Next(&s)
		if err := w.Write(trace.FromStep(&s)); err != nil {
			return err
		}
	}
	return w.Flush()
}
