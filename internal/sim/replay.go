package sim

import (
	"fmt"
	"os"

	wl "dnc/internal/cfg"
	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/prefetch"
	"dnc/internal/trace"
)

// RunTrace executes a simulation whose cores replay a recorded trace
// instead of walking the workload live. The trace must have been produced
// from the same workload parameters (cmd/tracegen), because the code image
// — needed by the pre-decoder and the wrong-path model — is regenerated
// from rc.Workload. Each core starts at a different offset into the trace
// to de-correlate the replicas, and loops when the trace ends.
func RunTrace(rc RunConfig, tracePath string) (Result, error) {
	if rc.Cores == 0 {
		rc.Cores = 4
	}
	if rc.WarmCycles == 0 {
		rc.WarmCycles = 200_000
	}
	if rc.MeasureCycles == 0 {
		rc.MeasureCycles = 200_000
	}
	if rc.Core.FetchWidth == 0 {
		rc.Core = core.DefaultConfig()
	}
	if rc.LLC.SizeBytes == 0 {
		rc.LLC = llc.DefaultConfig()
		// Variable-length workloads need the DV-LLC for branch footprints;
		// an explicitly supplied LLC configuration is taken as-is (the
		// Section VII.J experiment compares DV on against DV off).
		if rc.Workload.Mode == isa.Variable {
			rc.LLC.DVEnabled = true
		}
	}

	prog := Program(rc.Workload)
	uncore := core.NewUncore(rc.LLC)
	if !rc.NoPreload {
		uncore.Preload(prog.Image)
	}

	// skipStride de-correlates the replicas replaying one trace.
	const skipStride = 100_000

	cores := make([]*core.Core, rc.Cores)
	designs := make([]prefetch.Design, rc.Cores)
	files := make([]*os.File, 0, rc.Cores)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for i := range cores {
		f, err := os.Open(tracePath)
		if err != nil {
			return Result{}, fmt.Errorf("sim: opening trace: %w", err)
		}
		files = append(files, f)
		stream, err := trace.NewStream(f, uint64(i)*skipStride)
		if err != nil {
			return Result{}, fmt.Errorf("sim: trace stream: %w", err)
		}
		if stream.Mode() != rc.Workload.Mode {
			return Result{}, fmt.Errorf("sim: trace mode %v does not match workload mode %v",
				stream.Mode(), rc.Workload.Mode)
		}
		cc := rc.Core
		cc.Tile = i
		d := rc.NewDesign()
		designs[i] = d
		cores[i] = core.New(cc, stream, prog.Image, d, uncore)
	}

	for t := uint64(0); t < rc.WarmCycles; t++ {
		for _, c := range cores {
			c.Tick()
		}
	}
	for _, c := range cores {
		c.ResetMetrics()
	}
	uncore.LLC.ResetStats()
	uncore.Mesh.ResetStats()
	uncore.DRAM.ResetStats()
	for t := uint64(0); t < rc.MeasureCycles; t++ {
		for _, c := range cores {
			c.Tick()
		}
	}

	res := Result{
		Workload:    rc.Workload.Name,
		Design:      designs[0].Name(),
		PerCore:     make([]core.Metrics, rc.Cores),
		LLCStats:    uncore.LLC.Stats(),
		NoCFlits:    uncore.Mesh.Flits(),
		NoCQueued:   uncore.Mesh.QueuedCycles(),
		DRAMQueued:  uncore.DRAM.QueuedCycles(),
		StorageBits: designs[0].StorageBits(),
	}
	for i, c := range cores {
		res.PerCore[i] = c.M
		res.M.Add(&c.M)
	}
	res.Designs = designs
	return res, nil
}

// WriteTrace renders n committed instructions of the workload to path in
// the binary trace format (the library form of cmd/tracegen).
func WriteTrace(params wl.Params, seed int64, n uint64, path string) error {
	prog := Program(params)
	walker := wl.NewWalker(prog, seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, params.Mode)
	if err != nil {
		return err
	}
	var s wl.Step
	for i := uint64(0); i < n; i++ {
		walker.Next(&s)
		if err := w.Write(trace.FromStep(&s)); err != nil {
			return err
		}
	}
	return w.Flush()
}
