// Package stats provides counters, derived ratios, and simple summary
// statistics (mean, standard deviation, confidence intervals) used by the
// simulator and the benchmark harness.
//
// The simulator is deterministic given a seed, so statistics across samples
// come from independently seeded runs, mirroring the SimFlex-style sampling
// methodology of the paper (multiple checkpoints, warm-up + measurement).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	name string
	n    uint64
}

// Name returns the counter's registration name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Set is a registry of named counters. The zero value is not usable; call
// NewSet.
type Set struct {
	order    []string
	counters map[string]*Counter
}

// NewSet returns an empty counter registry.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it if needed.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Value returns the value of the named counter, or zero if it was never
// created.
func (s *Set) Value(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.n
	}
	return 0
}

// Ratio returns num/den over the named counters; it returns 0 when the
// denominator is zero.
func (s *Set) Ratio(num, den string) float64 {
	d := s.Value(den)
	if d == 0 {
		return 0
	}
	return float64(s.Value(num)) / float64(d)
}

// Names returns counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Reset zeroes every counter in the set, in registration order.
func (s *Set) Reset() {
	for _, n := range s.order {
		s.counters[n].Reset()
	}
}

// CounterValue is one counter's value captured by Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Snapshot captures every counter in registration order, for per-window
// sampling and for folding a registry into a run result.
func (s *Set) Snapshot() []CounterValue {
	out := make([]CounterValue, len(s.order))
	for i, n := range s.order {
		out[i] = CounterValue{Name: n, Value: s.counters[n].n}
	}
	return out
}

// String renders the set as "name=value" lines sorted by name, for debugging.
func (s *Set) String() string {
	names := s.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n].n)
	}
	return b.String()
}

// Summary holds the summary statistics of a series of sample measurements.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the 95% confidence interval of the mean.
	CI95 float64
}

// Summarize computes summary statistics over the samples. It returns a zero
// Summary for an empty slice.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	var sum float64
	mn, mx := samples[0], samples[0]
	for _, v := range samples {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(len(samples))
	var sq float64
	for _, v := range samples {
		d := v - mean
		sq += d * d
	}
	var sd float64
	if len(samples) > 1 {
		sd = math.Sqrt(sq / float64(len(samples)-1))
	}
	ci := 0.0
	if len(samples) > 1 {
		ci = tCritical95(len(samples)-1) * sd / math.Sqrt(float64(len(samples)))
	}
	return Summary{N: len(samples), Mean: mean, Stddev: sd, Min: mn, Max: mx, CI95: ci}
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom, using a small table with asymptotic fallback.
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 30:
		return 2.05
	case df < 60:
		return 2.01
	default:
		return 1.96
	}
}

// GeoMean returns the geometric mean of the samples. Samples must be
// positive; non-positive values are skipped.
func GeoMean(samples []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range samples {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Table renders rows of labelled values as an aligned text table; used by
// cmd/dncbench to print paper-style tables and figure series.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells to the table.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
