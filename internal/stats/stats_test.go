package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterSet(t *testing.T) {
	s := NewSet()
	c := s.Counter("misses")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 || s.Value("misses") != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if s.Counter("misses") != c {
		t.Fatal("counter not memoized")
	}
	if s.Value("absent") != 0 {
		t.Fatal("absent counter nonzero")
	}
	s.Counter("accesses").Add(10)
	if r := s.Ratio("misses", "accesses"); r != 0.5 {
		t.Fatalf("ratio = %v", r)
	}
	if s.Ratio("misses", "absent") != 0 {
		t.Fatal("ratio with zero denominator must be 0")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "misses" {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(s.String(), "misses=5") {
		t.Fatalf("String() = %q", s.String())
	}
	s.Reset()
	if s.Value("misses") != 0 {
		t.Fatal("reset failed")
	}
	if c.Name() != "misses" {
		t.Fatal("name lost")
	}
}

func TestSnapshotRegistrationOrder(t *testing.T) {
	s := NewSet()
	s.Counter("zeta").Add(1)
	s.Counter("alpha").Add(2)
	s.Counter("mid").Add(3)
	s.Counter("zeta").Add(10) // re-lookup must not reorder
	snap := s.Snapshot()
	want := []CounterValue{{"zeta", 11}, {"alpha", 2}, {"mid", 3}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %v", snap)
	}
	for i, w := range want {
		if snap[i] != w {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, snap[i], w)
		}
	}
	s.Reset()
	snap = s.Snapshot()
	if len(snap) != 3 || snap[0].Name != "zeta" || snap[0].Value != 0 {
		t.Errorf("post-Reset snapshot = %v, want same order, zero values", snap)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.CI95 <= 0 {
		t.Fatalf("CI95 = %v", s.CI95)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatal("empty summary nonzero")
	}
	one := Summarize([]float64{3})
	if one.Stddev != 0 || one.CI95 != 0 {
		t.Fatal("single sample must have no spread")
	}
}

func TestSummarizeQuick(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true // skip pathological inputs
			}
		}
		s := Summarize(vals)
		if len(vals) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCritical(t *testing.T) {
	if tCritical95(1) != 12.706 {
		t.Error("df=1 wrong")
	}
	if tCritical95(0) != 0 {
		t.Error("df=0 must be 0")
	}
	if v := tCritical95(25); v != 2.05 {
		t.Errorf("df=25 = %v", v)
	}
	if v := tCritical95(40); v != 2.01 {
		t.Errorf("df=40 = %v", v)
	}
	if v := tCritical95(120); v != 1.96 {
		t.Errorf("df=120 = %v", v)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean = %v", g)
	}
	if g := GeoMean([]float64{2, -1, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean with skipped nonpositive = %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{-1}) != 0 {
		t.Fatal("empty geomean nonzero")
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22222")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// Columns must align: every line equally indented at column 2.
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "alpha") || !strings.HasPrefix(lines[3], "b ") {
		t.Fatalf("rows wrong:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.1234) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
	if F2(1.237) != "1.24" {
		t.Errorf("F2 = %q", F2(1.237))
	}
}
