package blockmap

import (
	"math/rand"
	"sort"
	"testing"

	"dnc/internal/isa"
)

func TestPutGetDelete(t *testing.T) {
	m := New[int](4)
	if m.Len() != 0 {
		t.Fatalf("new map has %d entries", m.Len())
	}
	m.Put(10, 100)
	m.Put(20, 200)
	if v, ok := m.Get(10); !ok || v != 100 {
		t.Fatalf("Get(10) = %d, %v", v, ok)
	}
	if _, ok := m.Get(30); ok {
		t.Fatal("Get(30) hit on absent key")
	}
	if !m.Contains(20) || m.Contains(30) {
		t.Fatal("Contains wrong")
	}
	// Overwrite keeps Len.
	m.Put(10, 101)
	if v, _ := m.Get(10); v != 101 || m.Len() != 2 {
		t.Fatalf("overwrite: v=%d len=%d", v, m.Len())
	}
	if !m.Delete(10) || m.Delete(10) {
		t.Fatal("Delete reporting wrong")
	}
	if m.Contains(10) || m.Len() != 1 {
		t.Fatal("Delete left the entry")
	}
}

func TestPtr(t *testing.T) {
	m := New[int](4)
	m.Put(7, 70)
	p := m.Ptr(7)
	if p == nil || *p != 70 {
		t.Fatalf("Ptr(7) = %v", p)
	}
	*p = 71
	if v, _ := m.Get(7); v != 71 {
		t.Fatalf("write through Ptr lost: %d", v)
	}
	if m.Ptr(8) != nil {
		t.Fatal("Ptr hit on absent key")
	}
}

// TestBackwardShiftDelete exercises the deletion rule on colliding probe
// chains: after deleting an entry in the middle of a chain, every remaining
// entry must still be reachable.
func TestBackwardShiftDelete(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		m := New[int](8)
		ref := map[isa.BlockID]int{}
		keys := make([]isa.BlockID, 0, 64)
		for op := 0; op < 400; op++ {
			if len(keys) == 0 || rng.Intn(3) != 0 {
				b := isa.BlockID(rng.Intn(96)) // dense range forces collisions
				v := rng.Int()
				if _, dup := ref[b]; !dup {
					keys = append(keys, b)
				}
				ref[b] = v
				m.Put(b, v)
			} else {
				i := rng.Intn(len(keys))
				b := keys[i]
				keys = append(keys[:i], keys[i+1:]...)
				delete(ref, b)
				if !m.Delete(b) {
					t.Fatalf("trial %d: Delete(%d) missed a live key", trial, b)
				}
			}
			if m.Len() != len(ref) {
				t.Fatalf("trial %d: len %d, want %d", trial, m.Len(), len(ref))
			}
		}
		for b, want := range ref {
			if got, ok := m.Get(b); !ok || got != want {
				t.Fatalf("trial %d: Get(%d) = %d, %v; want %d", trial, b, got, ok, want)
			}
		}
	}
}

func TestGrow(t *testing.T) {
	m := New[uint64](1)
	const n = 10_000
	for i := 0; i < n; i++ {
		m.Put(isa.BlockID(i*7), uint64(i))
	}
	if m.Len() != n {
		t.Fatalf("len %d after %d inserts", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(isa.BlockID(i * 7)); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d, %v", i*7, v, ok)
		}
	}
}

func TestClearKeepsCapacity(t *testing.T) {
	m := New[int](64)
	for i := 0; i < 64; i++ {
		m.Put(isa.BlockID(i), i)
	}
	m.Clear()
	if m.Len() != 0 || m.Contains(3) {
		t.Fatal("Clear left entries")
	}
	// Refilling a cleared, presized table must not allocate.
	allocs := testing.AllocsPerRun(10, func() {
		m.Clear()
		for i := 0; i < 64; i++ {
			m.Put(isa.BlockID(i), i)
		}
	})
	if allocs != 0 {
		t.Fatalf("refill after Clear allocated %.1f times per run", allocs)
	}
}

func TestAppendKeysAndRange(t *testing.T) {
	m := New[int](8)
	want := []isa.BlockID{3, 1, 4, 15, 9, 2, 6}
	for i, b := range want {
		m.Put(b, i)
	}
	keys := m.AppendKeys(nil)
	if len(keys) != len(want) {
		t.Fatalf("AppendKeys returned %d keys, want %d", len(keys), len(want))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sorted := append([]isa.BlockID(nil), want...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range keys {
		if keys[i] != sorted[i] {
			t.Fatalf("keys[%d] = %d, want %d", i, keys[i], sorted[i])
		}
	}
	seen := map[isa.BlockID]int{}
	m.Range(func(b isa.BlockID, v int) { seen[b] = v })
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d entries", len(seen))
	}
	for i, b := range want {
		if seen[b] != i {
			t.Fatalf("Range saw %d=%d, want %d", b, seen[b], i)
		}
	}
}

// TestSteadyStateZeroAllocs is the hot-path contract: a presized table with
// churn inside its capacity never touches the allocator.
func TestSteadyStateZeroAllocs(t *testing.T) {
	m := New[uint64](32)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			m.Put(isa.BlockID(i), uint64(i))
		}
		for i := 0; i < 32; i++ {
			m.Delete(isa.BlockID(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %.1f times per run", allocs)
	}
}
