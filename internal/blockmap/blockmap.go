// Package blockmap provides a small open-addressed hash table keyed by
// isa.BlockID, used for the simulator's hot per-core structures (MSHR file,
// prefetch buffer index, prefetch-latency and branch-footprint caches).
//
// The engine's steady state must not allocate: Go's built-in map allocates
// on insert and forces a heap-allocated iterator for every range, which
// dominated the tick-path allocation profile. This table stores keys and
// values in flat slices with linear probing and backward-shift deletion
// (no tombstones), so steady-state Put/Delete cycles over a bounded working
// set never touch the allocator, and lookups are one or two contiguous
// cache lines instead of a runtime map probe.
//
// Iteration order over the table is insertion-history dependent and must
// never leak into simulation results; callers that need determinism
// (checkpoint encoders, audits) collect keys with AppendKeys and sort.
package blockmap

import "dnc/internal/isa"

// minCap is the smallest table size; power of two so masking replaces
// modulo.
const minCap = 8

// Map is an open-addressed isa.BlockID-keyed hash table. The zero value is
// ready to use; New presizes one for a known working-set bound.
type Map[V any] struct {
	keys []isa.BlockID
	vals []V
	used []bool
	n    int
}

// New returns a table presized so a working set of hint entries never
// rehashes (it still grows if the hint is exceeded).
func New[V any](hint int) *Map[V] {
	m := &Map[V]{}
	m.init(capFor(hint))
	return m
}

// capFor returns the power-of-two table size for a working set of n keys,
// keeping the load factor at or below 1/2 so probe runs stay short.
func capFor(n int) int {
	c := minCap
	for c < 2*n {
		c <<= 1
	}
	return c
}

func (m *Map[V]) init(capacity int) {
	m.keys = make([]isa.BlockID, capacity)
	m.vals = make([]V, capacity)
	m.used = make([]bool, capacity)
	m.n = 0
}

// hash finalizes the block ID into a well-mixed table index base
// (splitmix64 finalizer); block IDs are sequential, so identity hashing
// would cluster every probe run.
func hash(b isa.BlockID) uint64 {
	x := uint64(b)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (m *Map[V]) mask() uint64 { return uint64(len(m.keys) - 1) }

// Len returns the number of stored entries.
func (m *Map[V]) Len() int { return m.n }

// slot returns the index holding b, or -1.
func (m *Map[V]) slot(b isa.BlockID) int {
	if m.n == 0 {
		return -1
	}
	mask := m.mask()
	for i := hash(b) & mask; m.used[i]; i = (i + 1) & mask {
		if m.keys[i] == b {
			return int(i)
		}
	}
	return -1
}

// Get returns the value stored for b.
func (m *Map[V]) Get(b isa.BlockID) (V, bool) {
	if i := m.slot(b); i >= 0 {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// Contains reports whether b is present.
func (m *Map[V]) Contains(b isa.BlockID) bool { return m.slot(b) >= 0 }

// Ptr returns a pointer to b's stored value for in-place mutation, or nil.
// The pointer is invalidated by the next Put or Delete.
func (m *Map[V]) Ptr(b isa.BlockID) *V {
	if i := m.slot(b); i >= 0 {
		return &m.vals[i]
	}
	return nil
}

// Put stores v for b (inserting or overwriting) and returns a pointer to
// the stored value, valid until the next Put or Delete. It only allocates
// when the table must grow past its presized capacity.
func (m *Map[V]) Put(b isa.BlockID, v V) *V {
	if m.keys == nil {
		m.init(minCap)
	}
	if 2*(m.n+1) > len(m.keys) {
		m.grow()
	}
	mask := m.mask()
	i := hash(b) & mask
	for m.used[i] {
		if m.keys[i] == b {
			m.vals[i] = v
			return &m.vals[i]
		}
		i = (i + 1) & mask
	}
	m.keys[i], m.vals[i], m.used[i] = b, v, true
	m.n++
	return &m.vals[i]
}

// Delete removes b, reporting whether it was present. Deletion backward-
// shifts the displaced run instead of leaving tombstones, so long-lived
// tables never degrade.
func (m *Map[V]) Delete(b isa.BlockID) bool {
	i := m.slot(b)
	if i < 0 {
		return false
	}
	mask := m.mask()
	var zero V
	hole := uint64(i)
	for j := (hole + 1) & mask; m.used[j]; j = (j + 1) & mask {
		// An entry may fill the hole only if its home position does not lie
		// strictly inside (hole, j] — otherwise moving it would break its
		// own probe chain.
		home := hash(m.keys[j]) & mask
		if (j-home)&mask >= (j-hole)&mask {
			m.keys[hole], m.vals[hole] = m.keys[j], m.vals[j]
			hole = j
		}
	}
	m.keys[hole], m.vals[hole], m.used[hole] = 0, zero, false
	m.n--
	return true
}

// grow doubles the table and reinserts every entry.
func (m *Map[V]) grow() {
	ok, ov, ou := m.keys, m.vals, m.used
	m.init(2 * len(ok))
	for i, u := range ou {
		if u {
			m.Put(ok[i], ov[i])
		}
	}
}

// Clear removes every entry, keeping the table's capacity.
func (m *Map[V]) Clear() {
	clear(m.keys)
	clear(m.vals)
	clear(m.used)
	m.n = 0
}

// AppendKeys appends every stored key to dst and returns it. The order is
// table order (not deterministic across histories); callers sort before
// using it for anything that must be reproducible.
func (m *Map[V]) AppendKeys(dst []isa.BlockID) []isa.BlockID {
	for i, u := range m.used {
		if u {
			dst = append(dst, m.keys[i])
		}
	}
	return dst
}

// Range calls fn for every entry in table order (not deterministic across
// histories; see AppendKeys). fn must not mutate the map.
func (m *Map[V]) Range(fn func(b isa.BlockID, v V)) {
	for i, u := range m.used {
		if u {
			fn(m.keys[i], m.vals[i])
		}
	}
}
