package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dnc/internal/obs"
)

// Recorder folds per-cell lifecycle events into per-job timelines. Every
// cell's journey — enqueue → lease/execute → upload → verify → admit, with
// retries, revocations, and reassignments as explicit attempt spans — is
// divided into contiguous phases whose durations telescope exactly to the
// end-to-end latency, the same conservation discipline the cycle engine
// applies to stall attribution. All timestamps come from the server's one
// clock (worker clocks never enter the math, so skew cannot break
// conservation); offsets are microseconds from the recorder's epoch.
//
// A nil *Recorder disables everything: every method is a no-op, so the
// service hot path pays one pointer test when telemetry is off.
type Recorder struct {
	mu   sync.Mutex
	now  func() time.Time
	base time.Time
	jobs map[string]*jobTrace
	// byDigest fans execution events (leases, uploads, verdicts — which are
	// keyed by content digest, not job) out to every job currently waiting
	// on that cell; dedup means one digest can satisfy several jobs.
	byDigest map[string][]*cellTrace
	// onCellDone observes each finalized cell (histogram bridge).
	onCellDone func(CellSnapshot)
}

// jobTrace accumulates one job's timeline.
type jobTrace struct {
	id        string
	traceID   string
	submitted int64
	started   int64
	done      int64
	total     int
	cells     map[string]*cellTrace
	order     []string
}

// cellTrace is one cell's lifecycle within one job. Boundary timestamps
// are µs offsets; -1 means the boundary never happened.
type cellTrace struct {
	job      *jobTrace
	digest   string
	key      string
	enqueued int64
	exec     int64 // first attempt start
	upload   int64 // winning upload arrival (local: execution end)
	verified int64
	done     int64
	outcome  string // "", then admitted|cached|dead|failed
	attempts []AttemptSpan
}

// AttemptSpan is one execution attempt (a lease on a worker, or a local
// fallback run). End < 0 while the attempt is still open.
type AttemptSpan struct {
	N       int    `json:"n"`
	Worker  string `json:"worker"` // "" for local execution
	Start   int64  `json:"start_us"`
	End     int64  `json:"end_us"`
	Outcome string `json:"outcome"` // admitted|revoked|rejected|failed|open
}

// PhaseSpan is one contiguous lifecycle phase; phases of a cell tile
// [enqueue, done] with no gaps or overlaps.
type PhaseSpan struct {
	Name  string `json:"name"`
	Start int64  `json:"start_us"`
	End   int64  `json:"end_us"`
}

// CellSnapshot is the immutable export of one finalized (or in-flight)
// cell trace.
type CellSnapshot struct {
	Digest   string        `json:"digest"`
	SpanID   string        `json:"span_id"`
	Key      string        `json:"key"`
	Outcome  string        `json:"outcome"`
	Enqueued int64         `json:"enqueued_us"`
	Done     int64         `json:"done_us"`
	Phases   []PhaseSpan   `json:"phases"`
	Attempts []AttemptSpan `json:"attempts"`
}

// E2E returns the end-to-end latency in microseconds.
func (c CellSnapshot) E2E() int64 {
	if c.Done < 0 || c.Enqueued < 0 {
		return 0
	}
	return c.Done - c.Enqueued
}

// PhaseSum returns the telescoped phase total in microseconds; the
// conservation check is PhaseSum() == E2E().
func (c CellSnapshot) PhaseSum() int64 {
	var sum int64
	for _, p := range c.Phases {
		sum += p.End - p.Start
	}
	return sum
}

// Phase returns the duration of a named phase in microseconds (0 if the
// cell never passed through it).
func (c CellSnapshot) Phase(name string) int64 {
	for _, p := range c.Phases {
		if p.Name == name {
			return p.End - p.Start
		}
	}
	return 0
}

// JobSnapshot is the immutable export of one job timeline.
type JobSnapshot struct {
	JobID     string         `json:"job_id"`
	TraceID   string         `json:"trace_id"`
	Submitted int64          `json:"submitted_us"`
	Started   int64          `json:"started_us"`
	Done      int64          `json:"done_us"`
	Total     int            `json:"total_cells"`
	Cells     []CellSnapshot `json:"cells"`
}

// NewRecorder returns a recorder using the given clock (nil for wall
// clock). The clock seam keeps timeline tests deterministic.
func NewRecorder(now func() time.Time) *Recorder {
	if now == nil {
		now = time.Now
	}
	return &Recorder{
		now:      now,
		base:     now(),
		jobs:     make(map[string]*jobTrace),
		byDigest: make(map[string][]*cellTrace),
	}
}

// OnCellDone registers a callback invoked (under no lock) with each
// finalized cell — the bridge feeding phase durations into histograms.
// Must be set before concurrent use.
func (r *Recorder) OnCellDone(fn func(CellSnapshot)) {
	if r != nil {
		r.onCellDone = fn
	}
}

func (r *Recorder) ts() int64 {
	return int64(r.now().Sub(r.base) / time.Microsecond)
}

// JobSubmitted opens a job timeline and returns its trace ID.
func (r *Recorder) JobSubmitted(jobID string, totalCells int) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[jobID]
	if !ok {
		j = &jobTrace{id: jobID, traceID: TraceID(jobID), submitted: r.ts(),
			started: -1, done: -1, cells: make(map[string]*cellTrace)}
		r.jobs[jobID] = j
	}
	j.total = totalCells
	return j.traceID
}

// JobStarted marks the job leaving the queue.
func (r *Recorder) JobStarted(jobID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if j := r.jobs[jobID]; j != nil && j.started < 0 {
		j.started = r.ts()
	}
}

// JobDone marks the job terminal.
func (r *Recorder) JobDone(jobID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if j := r.jobs[jobID]; j != nil && j.done < 0 {
		j.done = r.ts()
	}
}

// cell fetches or creates the per-job cell trace. Caller holds r.mu.
func (r *Recorder) cell(jobID, digest, key string) *cellTrace {
	j := r.jobs[jobID]
	if j == nil {
		// A cell event for an untracked job (e.g. recorder enabled after
		// recovery re-queued the job) opens the job implicitly so no event
		// is dropped on the floor.
		j = &jobTrace{id: jobID, traceID: TraceID(jobID), submitted: r.ts(),
			started: -1, done: -1, cells: make(map[string]*cellTrace)}
		r.jobs[jobID] = j
	}
	c, ok := j.cells[digest]
	if !ok {
		c = &cellTrace{job: j, digest: digest, key: key,
			enqueued: -1, exec: -1, upload: -1, verified: -1, done: -1}
		j.cells[digest] = c
		j.order = append(j.order, digest)
	}
	return c
}

// CellEnqueued records a cell entering the run queue and subscribes the
// job to that digest's execution events.
func (r *Recorder) CellEnqueued(jobID, digest, key string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cell(jobID, digest, key)
	if c.enqueued < 0 {
		c.enqueued = r.ts()
	}
	for _, sub := range r.byDigest[digest] {
		if sub == c {
			return
		}
	}
	r.byDigest[digest] = append(r.byDigest[digest], c)
}

// CellCached records a cache-hit cell: its whole lifecycle is one instant.
func (r *Recorder) CellCached(jobID, digest, key string) {
	r.finishInstant(jobID, digest, key, "cached")
}

// CellDead records a dead-lettered cell short-circuited before execution.
func (r *Recorder) CellDead(jobID, digest, key string) {
	r.finishInstant(jobID, digest, key, "dead")
}

func (r *Recorder) finishInstant(jobID, digest, key, outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.cell(jobID, digest, key)
	t := r.ts()
	if c.enqueued < 0 {
		c.enqueued = t
	}
	c.done = t
	c.outcome = outcome
	snap := r.snapshotCellLocked(c)
	r.mu.Unlock()
	if r.onCellDone != nil {
		r.onCellDone(snap)
	}
}

// ExecStart opens an execution attempt for every job waiting on the
// digest. Worker "" means local fallback execution.
func (r *Recorder) ExecStart(digest, worker string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.ts()
	for _, c := range r.byDigest[digest] {
		if c.exec < 0 {
			c.exec = t
		}
		c.attempts = append(c.attempts, AttemptSpan{
			N: len(c.attempts) + 1, Worker: worker, Start: t, End: -1, Outcome: "open"})
	}
}

// ExecEnd closes the open attempt on the given worker with an outcome
// (revoked, rejected, failed, admitted). Reassigned cells keep the closed
// attempt and get a new one at the next ExecStart.
func (r *Recorder) ExecEnd(digest, worker, outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.ts()
	for _, c := range r.byDigest[digest] {
		for i := len(c.attempts) - 1; i >= 0; i-- {
			a := &c.attempts[i]
			if a.Worker == worker && a.End < 0 {
				a.End = t
				a.Outcome = outcome
				break
			}
		}
	}
}

// Upload records the winning result arrival (remote upload or local
// execution finish) — the execute→verify phase boundary.
func (r *Recorder) Upload(digest string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.ts()
	for _, c := range r.byDigest[digest] {
		if c.upload < 0 {
			c.upload = t
		}
	}
}

// Verified records the verification verdict boundary.
func (r *Recorder) Verified(digest string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.ts()
	for _, c := range r.byDigest[digest] {
		if c.verified < 0 {
			c.verified = t
		}
	}
}

// CellDone finalizes one job's cell with a terminal outcome (admitted or
// failed), computes its phase spans, unsubscribes it from execution
// events, and feeds the OnCellDone bridge.
func (r *Recorder) CellDone(jobID, digest, outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	j := r.jobs[jobID]
	if j == nil {
		r.mu.Unlock()
		return
	}
	c := j.cells[digest]
	if c == nil || c.done >= 0 {
		r.mu.Unlock()
		return
	}
	c.done = r.ts()
	c.outcome = outcome
	// Close any attempt left open (local execution ends here).
	for i := len(c.attempts) - 1; i >= 0; i-- {
		if c.attempts[i].End < 0 {
			c.attempts[i].End = c.done
			c.attempts[i].Outcome = outcome
		}
	}
	// Unsubscribe from execution fan-out.
	subs := r.byDigest[digest]
	for i, sub := range subs {
		if sub == c {
			r.byDigest[digest] = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	if len(r.byDigest[digest]) == 0 {
		delete(r.byDigest, digest)
	}
	snap := r.snapshotCellLocked(c)
	r.mu.Unlock()
	if r.onCellDone != nil {
		r.onCellDone(snap)
	}
}

// phases tiles [enqueued, done] with contiguous spans at each boundary the
// cell actually passed: the telescoping sum equals end-to-end latency by
// construction (conservation is structural, not checked after the fact).
func (c *cellTrace) phases() []PhaseSpan {
	if c.enqueued < 0 || c.done < 0 {
		return nil
	}
	if c.outcome == "cached" || c.outcome == "dead" {
		return []PhaseSpan{{Name: c.outcome, Start: c.enqueued, End: c.done}}
	}
	var out []PhaseSpan
	cur := c.enqueued
	add := func(name string, end int64) {
		if end < cur { // clock seams may be coarse; clamp, never overlap
			end = cur
		}
		out = append(out, PhaseSpan{Name: name, Start: cur, End: end})
		cur = end
	}
	if c.exec >= 0 {
		add("queue-wait", c.exec)
	}
	if c.upload >= 0 {
		add("execute", c.upload)
	}
	if c.verified >= 0 {
		add("verify", c.verified)
	}
	add("admit", c.done)
	return out
}

func (r *Recorder) snapshotCellLocked(c *cellTrace) CellSnapshot {
	return CellSnapshot{
		Digest:   c.digest,
		SpanID:   SpanID(c.digest),
		Key:      c.key,
		Outcome:  c.outcome,
		Enqueued: c.enqueued,
		Done:     c.done,
		Phases:   c.phases(),
		Attempts: append([]AttemptSpan(nil), c.attempts...),
	}
}

// Job returns a deep snapshot of one job's timeline, or false if unknown.
func (r *Recorder) Job(jobID string) (JobSnapshot, bool) {
	if r == nil {
		return JobSnapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[jobID]
	if j == nil {
		return JobSnapshot{}, false
	}
	snap := JobSnapshot{JobID: j.id, TraceID: j.traceID, Submitted: j.submitted,
		Started: j.started, Done: j.done, Total: j.total}
	for _, d := range j.order {
		snap.Cells = append(snap.Cells, r.snapshotCellLocked(j.cells[d]))
	}
	return snap, true
}

// WriteJobPerfetto exports one job's timeline as Chrome trace_event JSON
// via the obs span exporter: one Perfetto process per cell with a phase
// lane and an attempt lane, plus a job-lifecycle track. Returns false if
// the job is unknown.
func (r *Recorder) WriteJobPerfetto(w io.Writer, jobID string) (bool, error) {
	snap, ok := r.Job(jobID)
	if !ok {
		return false, nil
	}
	var spans []obs.Span
	jobEnd := snap.Done
	if jobEnd < 0 {
		jobEnd = snap.Submitted
	}
	spans = append(spans, obs.Span{
		Track: "job " + snap.JobID, Lane: "lifecycle", Name: "job",
		Ts: uint64(snap.Submitted), Dur: uint64(jobEnd - snap.Submitted),
		Args: map[string]any{"trace_id": snap.TraceID, "cells": snap.Total},
	})
	for _, c := range snap.Cells {
		track := "cell " + c.SpanID
		for _, p := range c.Phases {
			spans = append(spans, obs.Span{
				Track: track, Lane: "phases", Name: p.Name,
				Ts: uint64(p.Start), Dur: uint64(p.End - p.Start),
				Args: map[string]any{"trace_id": snap.TraceID, "span_id": c.SpanID,
					"key": c.Key, "outcome": c.Outcome},
			})
		}
		for _, a := range c.Attempts {
			end := a.End
			if end < a.Start {
				end = a.Start
			}
			worker := a.Worker
			if worker == "" {
				worker = "local"
			}
			spans = append(spans, obs.Span{
				Track: track, Lane: "attempts",
				Name: fmt.Sprintf("attempt %d: %s", a.N, a.Outcome),
				Ts:   uint64(a.Start), Dur: uint64(end - a.Start),
				Args: map[string]any{"worker": worker},
			})
		}
	}
	err := obs.WriteSpanTrace(w, spans, obs.SpanTraceMeta{
		Name:  snap.JobID,
		Clock: "server wall clock, us since telemetry epoch",
	})
	return true, err
}
