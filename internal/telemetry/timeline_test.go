package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a deterministic amount per call.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0), step: step}
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestTraceIdentityDeterministic(t *testing.T) {
	if TraceID("job-1") != TraceID("job-1") {
		t.Fatal("trace ID not deterministic")
	}
	if TraceID("job-1") == TraceID("job-2") {
		t.Fatal("trace IDs collide across jobs")
	}
	if len(TraceID("x")) != 16 {
		t.Fatalf("trace ID length %d, want 16", len(TraceID("x")))
	}
	digest := strings.Repeat("ab", 32)
	if SpanID(digest) != digest[:16] {
		t.Fatalf("span ID %q not the digest prefix", SpanID(digest))
	}
	if len(SpanID("short")) != 16 {
		t.Fatalf("short-digest span ID length %d, want 16", len(SpanID("short")))
	}
}

func TestRecorderLifecycleConservation(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	r := NewRecorder(clk.now)
	var doneCells []CellSnapshot
	r.OnCellDone(func(c CellSnapshot) { doneCells = append(doneCells, c) })

	tid := r.JobSubmitted("job-1", 3)
	if tid != TraceID("job-1") {
		t.Fatalf("trace ID %q != derived %q", tid, TraceID("job-1"))
	}
	r.JobStarted("job-1")
	r.CellCached("job-1", "d-cached", "k-cached")
	r.CellDead("job-1", "d-dead", "k-dead")

	r.CellEnqueued("job-1", "d-run", "k-run")
	r.ExecStart("d-run", "w000001")
	r.ExecEnd("d-run", "w000001", "revoked") // lease expired, reassigned
	r.ExecStart("d-run", "w000002")
	r.Upload("d-run")
	r.Verified("d-run")
	r.ExecEnd("d-run", "w000002", "admitted")
	r.CellDone("job-1", "d-run", "admitted")
	r.JobDone("job-1")

	snap, ok := r.Job("job-1")
	if !ok {
		t.Fatal("job not found")
	}
	if snap.Total != 3 || len(snap.Cells) != 3 {
		t.Fatalf("total=%d cells=%d, want 3/3", snap.Total, len(snap.Cells))
	}
	if snap.Done < snap.Submitted {
		t.Fatal("job done before submitted")
	}
	byDigest := map[string]CellSnapshot{}
	for _, c := range snap.Cells {
		byDigest[c.Digest] = c
	}
	run := byDigest["d-run"]
	if run.Outcome != "admitted" {
		t.Fatalf("run outcome %q", run.Outcome)
	}
	// Conservation: phases tile [enqueue, done] exactly.
	if run.PhaseSum() != run.E2E() {
		t.Fatalf("phase sum %dus != e2e %dus", run.PhaseSum(), run.E2E())
	}
	wantPhases := []string{"queue-wait", "execute", "verify", "admit"}
	if len(run.Phases) != len(wantPhases) {
		t.Fatalf("phases %+v, want %v", run.Phases, wantPhases)
	}
	for i, p := range run.Phases {
		if p.Name != wantPhases[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.Name, wantPhases[i])
		}
		if p.End < p.Start {
			t.Fatalf("phase %q negative", p.Name)
		}
		if i > 0 && p.Start != run.Phases[i-1].End {
			t.Fatalf("phase %q not contiguous", p.Name)
		}
	}
	// Reassignment shows both attempts.
	if len(run.Attempts) != 2 {
		t.Fatalf("attempts %+v, want 2", run.Attempts)
	}
	if run.Attempts[0].Outcome != "revoked" || run.Attempts[1].Outcome != "admitted" {
		t.Fatalf("attempt outcomes %+v", run.Attempts)
	}
	if run.Attempts[0].Worker != "w000001" || run.Attempts[1].Worker != "w000002" {
		t.Fatalf("attempt workers %+v", run.Attempts)
	}

	cached := byDigest["d-cached"]
	if cached.Outcome != "cached" || len(cached.Phases) != 1 || cached.Phases[0].Name != "cached" {
		t.Fatalf("cached cell %+v", cached)
	}
	if cached.PhaseSum() != cached.E2E() {
		t.Fatal("cached conservation broken")
	}
	dead := byDigest["d-dead"]
	if dead.Outcome != "dead" || dead.Phase("dead") != dead.E2E() {
		t.Fatalf("dead cell %+v", dead)
	}
	if len(doneCells) != 3 {
		t.Fatalf("OnCellDone fired %d times, want 3", len(doneCells))
	}
}

func TestRecorderLocalExecution(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	r := NewRecorder(clk.now)
	r.JobSubmitted("j", 1)
	r.CellEnqueued("j", "d", "k")
	r.ExecStart("d", "") // local fallback
	r.Upload("d")
	r.Verified("d")
	r.CellDone("j", "d", "admitted")
	snap, _ := r.Job("j")
	c := snap.Cells[0]
	if c.PhaseSum() != c.E2E() {
		t.Fatalf("local conservation: %d != %d", c.PhaseSum(), c.E2E())
	}
	if len(c.Attempts) != 1 || c.Attempts[0].Worker != "" || c.Attempts[0].Outcome != "admitted" {
		t.Fatalf("local attempt %+v", c.Attempts)
	}
	if c.Attempts[0].End < 0 {
		t.Fatal("open attempt not closed at CellDone")
	}
}

func TestRecorderDedupFanOut(t *testing.T) {
	// Two jobs wait on the same digest; one ExecStart/Upload must land in
	// both timelines, and CellDone on one must not unsubscribe the other.
	clk := newFakeClock(time.Millisecond)
	r := NewRecorder(clk.now)
	r.JobSubmitted("j1", 1)
	r.JobSubmitted("j2", 1)
	r.CellEnqueued("j1", "d", "k")
	r.CellEnqueued("j2", "d", "k")
	r.ExecStart("d", "w000001")
	r.Upload("d")
	r.Verified("d")
	r.CellDone("j1", "d", "admitted")
	// j2 still subscribed: a later verdict event must not panic and its
	// own CellDone still finalizes.
	r.CellDone("j2", "d", "admitted")
	for _, id := range []string{"j1", "j2"} {
		snap, ok := r.Job(id)
		if !ok || len(snap.Cells) != 1 {
			t.Fatalf("job %s missing cells", id)
		}
		c := snap.Cells[0]
		if c.Outcome != "admitted" || len(c.Attempts) != 1 {
			t.Fatalf("job %s cell %+v", id, c)
		}
		if c.PhaseSum() != c.E2E() {
			t.Fatalf("job %s conservation", id)
		}
	}
}

func TestRecorderIdempotentAndUnknown(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	r := NewRecorder(clk.now)
	r.JobSubmitted("j", 1)
	r.CellEnqueued("j", "d", "k")
	r.CellEnqueued("j", "d", "k") // double enqueue must not double-subscribe
	r.ExecStart("d", "w1")
	r.CellDone("j", "d", "admitted")
	r.CellDone("j", "d", "failed") // second terminal event ignored
	snap, _ := r.Job("j")
	if snap.Cells[0].Outcome != "admitted" {
		t.Fatalf("outcome overwritten: %q", snap.Cells[0].Outcome)
	}
	if len(snap.Cells[0].Attempts) != 1 {
		t.Fatalf("double subscription duplicated attempts: %+v", snap.Cells[0].Attempts)
	}
	r.CellDone("unknown-job", "d", "admitted") // no-op, no panic
	if _, ok := r.Job("nope"); ok {
		t.Fatal("unknown job reported present")
	}
	// Events for an untracked job open it implicitly (post-recovery path).
	r.CellCached("recovered", "d2", "k2")
	if snap, ok := r.Job("recovered"); !ok || len(snap.Cells) != 1 {
		t.Fatal("implicit job not opened")
	}
}

func TestWriteJobPerfettoValidJSON(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	r := NewRecorder(clk.now)
	r.JobSubmitted("job-9", 1)
	r.CellEnqueued("job-9", strings.Repeat("ab", 32), "k")
	d := strings.Repeat("ab", 32)
	r.ExecStart(d, "w000001")
	r.ExecEnd(d, "w000001", "revoked")
	r.ExecStart(d, "w000002")
	r.Upload(d)
	r.Verified(d)
	r.ExecEnd(d, "w000002", "admitted")
	r.CellDone("job-9", d, "admitted")
	r.JobDone("job-9")

	var b strings.Builder
	ok, err := r.WriteJobPerfetto(&b, "job-9")
	if err != nil || !ok {
		t.Fatalf("export: ok=%v err=%v", ok, err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	var attempts, phases int
	for _, ev := range doc.TraceEvents {
		if strings.HasPrefix(ev.Name, "attempt ") {
			attempts++
		}
		switch ev.Name {
		case "queue-wait", "execute", "verify", "admit":
			phases++
		}
	}
	if attempts != 2 {
		t.Fatalf("trace shows %d attempts, want 2", attempts)
	}
	if phases != 4 {
		t.Fatalf("trace shows %d phase spans, want 4", phases)
	}
	if ok, err := r.WriteJobPerfetto(&b, "missing"); ok || err != nil {
		t.Fatalf("missing job: ok=%v err=%v", ok, err)
	}
}

func TestRecorderWallClockDefault(t *testing.T) {
	r := NewRecorder(nil)
	r.JobSubmitted("j", 0)
	if snap, ok := r.Job("j"); !ok || snap.Submitted < 0 {
		t.Fatal("wall-clock recorder broken")
	}
}
