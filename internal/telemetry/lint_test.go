package telemetry

import (
	"strings"
	"testing"
)

func lintErrs(t *testing.T, exposition string) []string {
	t.Helper()
	var out []string
	for _, err := range Lint([]byte(exposition)) {
		out = append(out, err.Error())
	}
	return out
}

func wantLintError(t *testing.T, exposition, substr string) {
	t.Helper()
	errs := lintErrs(t, exposition)
	for _, e := range errs {
		if strings.Contains(e, substr) {
			return
		}
	}
	t.Fatalf("lint errors %v do not mention %q", errs, substr)
}

func TestLintCleanExposition(t *testing.T) {
	clean := `# HELP dnc_cells_total Cells.
# TYPE dnc_cells_total counter
dnc_cells_total 3
# HELP dnc_depth Queue depth.
# TYPE dnc_depth gauge
dnc_depth 1.5
# HELP dnc_wait_seconds Wait.
# TYPE dnc_wait_seconds histogram
dnc_wait_seconds_bucket{le="0.1"} 1
dnc_wait_seconds_bucket{le="1"} 2
dnc_wait_seconds_bucket{le="+Inf"} 2
dnc_wait_seconds_sum 0.5
dnc_wait_seconds_count 2
`
	if errs := Lint([]byte(clean)); len(errs) > 0 {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, exposition, want string
	}{
		{"counter suffix",
			"# HELP dnc_cells Cells.\n# TYPE dnc_cells counter\ndnc_cells 1\n",
			"must end in _total"},
		{"histogram suffix",
			"# HELP dnc_wait Wait.\n# TYPE dnc_wait histogram\ndnc_wait_bucket{le=\"+Inf\"} 1\ndnc_wait_sum 1\ndnc_wait_count 1\n",
			"must end in _seconds or _bytes"},
		{"missing help",
			"# TYPE dnc_x_total counter\ndnc_x_total 1\n",
			"missing HELP"},
		{"empty help",
			"# HELP dnc_x_total \n# TYPE dnc_x_total counter\ndnc_x_total 1\n",
			"empty HELP"},
		{"missing type",
			"# HELP dnc_x_total X.\ndnc_x_total 1\n",
			"missing TYPE"},
		{"sample without metadata",
			"stray_metric 1\n",
			"no HELP/TYPE"},
		{"duplicate help",
			"# HELP dnc_x_total X.\n# HELP dnc_x_total Y.\n# TYPE dnc_x_total counter\ndnc_x_total 1\n",
			"duplicate HELP"},
		{"type after samples",
			"# HELP dnc_x_total X.\ndnc_x_total 1\n# TYPE dnc_x_total counter\n",
			"after its samples"},
		{"unknown type",
			"# HELP dnc_x_total X.\n# TYPE dnc_x_total summary\ndnc_x_total 1\n",
			"unknown TYPE"},
		{"no samples",
			"# HELP dnc_x_total X.\n# TYPE dnc_x_total counter\n",
			"no samples"},
		{"missing inf",
			"# HELP dnc_w_seconds W.\n# TYPE dnc_w_seconds histogram\ndnc_w_seconds_bucket{le=\"1\"} 1\ndnc_w_seconds_sum 1\ndnc_w_seconds_count 1\n",
			"missing +Inf"},
		{"missing sum",
			"# HELP dnc_w_seconds W.\n# TYPE dnc_w_seconds histogram\ndnc_w_seconds_bucket{le=\"+Inf\"} 1\ndnc_w_seconds_count 1\n",
			"missing _sum"},
		{"missing count",
			"# HELP dnc_w_seconds W.\n# TYPE dnc_w_seconds histogram\ndnc_w_seconds_bucket{le=\"+Inf\"} 1\ndnc_w_seconds_sum 1\n",
			"missing _count"},
		{"le out of order",
			"# HELP dnc_w_seconds W.\n# TYPE dnc_w_seconds histogram\ndnc_w_seconds_bucket{le=\"1\"} 1\ndnc_w_seconds_bucket{le=\"0.5\"} 2\ndnc_w_seconds_bucket{le=\"+Inf\"} 2\ndnc_w_seconds_sum 1\ndnc_w_seconds_count 2\n",
			"out of order"},
		{"non-cumulative",
			"# HELP dnc_w_seconds W.\n# TYPE dnc_w_seconds histogram\ndnc_w_seconds_bucket{le=\"1\"} 5\ndnc_w_seconds_bucket{le=\"+Inf\"} 2\ndnc_w_seconds_sum 1\ndnc_w_seconds_count 2\n",
			"non-cumulative"},
		{"bucket without le",
			"# HELP dnc_w_seconds W.\n# TYPE dnc_w_seconds histogram\ndnc_w_seconds_bucket 1\ndnc_w_seconds_bucket{le=\"+Inf\"} 1\ndnc_w_seconds_sum 1\ndnc_w_seconds_count 1\n",
			"without le label"},
		{"bad le value",
			"# HELP dnc_w_seconds W.\n# TYPE dnc_w_seconds histogram\ndnc_w_seconds_bucket{le=\"abc\"} 1\ndnc_w_seconds_bucket{le=\"+Inf\"} 1\ndnc_w_seconds_sum 1\ndnc_w_seconds_count 1\n",
			"bad le value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantLintError(t, tc.exposition, tc.want)
		})
	}
}

// TestLintRegistryRoundTrip proves any registry built with the package's
// own constructors lints clean — the invariant CI relies on when it lints
// a live scrape.
func TestLintRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("dnc_a_total", "A.").Inc()
	r.CounterFunc("dnc_b_total", "B.", func() uint64 { return 2 })
	r.CounterVec("dnc_c_total", "C.", "status").With("503").Inc()
	r.GaugeFunc("dnc_d", "D.", func() float64 { return 0.5 })
	h := r.Histogram("dnc_e_seconds", "E.", DurationBounds(), SecondsScale)
	h.Observe(12345)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := Lint([]byte(b.String())); len(errs) > 0 {
		t.Fatalf("registry exposition failed its own lint: %v", errs)
	}
}
