package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text exposition against the conventions this
// repo documents in docs/OPERATIONS.md: every family has a non-empty HELP
// and a TYPE before its samples, family names are unique, counters end in
// _total, histograms end in _seconds or _bytes, histogram le buckets are
// cumulative and end at +Inf, and _sum/_count are present. CI runs it
// against a live dncserved scrape; tests run it against both binaries'
// registries. Returns nil when the exposition is clean.
func Lint(exposition []byte) []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	type family struct {
		help, typ  string
		samples    int
		lastLe     float64
		sawInf     bool
		sawSum     bool
		sawCount   bool
		leOrderOK  bool
		lastBucket uint64
	}
	families := map[string]*family{}
	var order []string
	get := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{leOrderOK: true, lastLe: -1}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	// baseName strips histogram sample suffixes back to the family name.
	baseName := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				return strings.TrimSuffix(name, suf), suf
			}
		}
		return name, ""
	}

	for ln, line := range strings.Split(string(exposition), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := get(name)
			if f.help != "" {
				fail("line %d: duplicate HELP for %s", ln+1, name)
			}
			if strings.TrimSpace(help) == "" {
				fail("line %d: empty HELP for %s", ln+1, name)
			}
			f.help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			f := get(name)
			if f.typ != "" {
				fail("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if f.samples > 0 {
				fail("line %d: TYPE for %s after its samples", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				fail("line %d: unknown TYPE %q for %s", ln+1, typ, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		// Sample line: name{labels} value  or  name value.
		sampleName := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			sampleName = line[:i]
		}
		fam, suffix := baseName(sampleName)
		if suffix != "" && (families[fam] == nil || families[fam].typ != "histogram") {
			// _total counters end in _total, not a histogram suffix; only
			// treat the suffix as histogram machinery when the family is one.
			fam, suffix = sampleName, ""
		}
		f, ok := families[fam]
		if !ok {
			fail("line %d: sample %s has no HELP/TYPE", ln+1, sampleName)
			f = get(fam)
		}
		f.samples++
		switch suffix {
		case "_sum":
			f.sawSum = true
		case "_count":
			f.sawCount = true
		case "_bucket":
			le := labelValue(line, "le")
			if le == "" {
				fail("line %d: histogram bucket without le label", ln+1)
				break
			}
			var bound float64
			if le == "+Inf" {
				f.sawInf = true
				bound = maxFloat
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					fail("line %d: bad le value %q", ln+1, le)
					break
				}
				bound = v
			}
			if bound <= f.lastLe {
				fail("line %d: le buckets out of order for %s", ln+1, fam)
				f.leOrderOK = false
			}
			f.lastLe = bound
			// Cumulative check: counts must be non-decreasing.
			fields := strings.Fields(line)
			if n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64); err == nil {
				if n < f.lastBucket {
					fail("line %d: non-cumulative bucket counts for %s", ln+1, fam)
				}
				f.lastBucket = n
			}
		}
	}

	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if f.help == "" {
			fail("family %s: missing HELP", name)
		}
		if f.typ == "" {
			fail("family %s: missing TYPE", name)
		}
		if f.samples == 0 {
			fail("family %s: declared but no samples", name)
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				fail("family %s: counter must end in _total", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				fail("family %s: histogram must end in _seconds or _bytes", name)
			}
			if !f.sawInf {
				fail("family %s: histogram missing +Inf bucket", name)
			}
			if !f.sawSum {
				fail("family %s: histogram missing _sum", name)
			}
			if !f.sawCount {
				fail("family %s: histogram missing _count", name)
			}
		}
	}
	return errs
}

const maxFloat = 1.797693134862315708145274237317043567981e+308

// labelValue extracts one label's value from a sample line, or "".
func labelValue(line, label string) string {
	i := strings.Index(line, label+`="`)
	if i < 0 {
		return ""
	}
	rest := line[i+len(label)+2:]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return ""
	}
	return rest[:j]
}
