package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dnc_things_total", "Things counted.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	cv := r.CounterVec("dnc_retries_total", "Retries by status.", "status")
	cv.With("503").Inc()
	cv.With("503").Inc()
	cv.With("429").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP dnc_things_total Things counted.",
		"# TYPE dnc_things_total counter",
		"dnc_things_total 5",
		`dnc_retries_total{status="429"} 1`,
		`dnc_retries_total{status="503"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Vec children sort by label value for stable output.
	if strings.Index(out, `status="429"`) > strings.Index(out, `status="503"`) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7.0
	r.GaugeFunc("dnc_queue_depth", "Queue depth.", func() float64 { return depth })
	n := uint64(42)
	r.CounterFunc("dnc_mirrored_total", "Mirrored.", func() uint64 { return n })
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "dnc_queue_depth 7\n") {
		t.Errorf("gauge sample missing:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE dnc_queue_depth gauge") {
		t.Errorf("gauge TYPE missing:\n%s", out)
	}
	if !strings.Contains(out, "dnc_mirrored_total 42\n") {
		t.Errorf("counterfunc sample missing:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dnc_wait_seconds", "Wait time.", []uint64{1000, 10000, 100000}, SecondsScale)
	h.ObserveDuration(500 * time.Microsecond)  // ≤ 1000µs bucket
	h.ObserveDuration(5 * time.Millisecond)    // ≤ 10000µs bucket
	h.ObserveDuration(5 * time.Millisecond)    // ≤ 10000µs bucket
	h.ObserveDuration(time.Second)             // overflow → +Inf only
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`dnc_wait_seconds_bucket{le="0.001"} 1`,
		`dnc_wait_seconds_bucket{le="0.01"} 3`,
		`dnc_wait_seconds_bucket{le="0.1"} 3`,
		`dnc_wait_seconds_bucket{le="+Inf"} 4`,
		"dnc_wait_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := Lint([]byte(out)); len(errs) > 0 {
		t.Fatalf("self-lint failed: %v", errs)
	}
	if s := h.Snapshot(); s.N != 4 {
		t.Fatalf("snapshot N = %d, want 4", s.N)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dnc_neg_seconds", "Neg.", []uint64{10}, SecondsScale)
	h.ObserveDuration(-time.Second)
	if s := h.Snapshot(); s.N != 1 || s.Sum != 0 {
		t.Fatalf("negative duration not clamped: %+v", s)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	cv := r.CounterVec("y_total", "y", "l")
	cv.With("a").Inc()
	r.GaugeFunc("g", "g", nil)
	r.CounterFunc("f_total", "f", nil)
	h := r.Histogram("h_seconds", "h", []uint64{1}, 1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	_ = h.Snapshot()
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	var rec *Recorder
	rec.JobSubmitted("j", 1)
	rec.JobStarted("j")
	rec.CellEnqueued("j", "d", "k")
	rec.ExecStart("d", "w")
	rec.Upload("d")
	rec.Verified("d")
	rec.ExecEnd("d", "w", "admitted")
	rec.CellDone("j", "d", "admitted")
	rec.CellCached("j", "d2", "k2")
	rec.CellDead("j", "d3", "k3")
	rec.JobDone("j")
	rec.OnCellDone(nil)
	if _, ok := rec.Job("j"); ok {
		t.Fatal("nil recorder returned a job")
	}
	if ok, _ := rec.WriteJobPerfetto(&strings.Builder{}, "j"); ok {
		t.Fatal("nil recorder wrote a trace")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup_total", "a")
	r.Counter("dup_total", "b")
}

func TestEmptyVecExposesZeroSample(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("dnc_empty_total", "Empty vec.", "status")
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `dnc_empty_total{status=""} 0`) {
		t.Fatalf("empty vec has no zero sample:\n%s", b.String())
	}
	if errs := Lint([]byte(b.String())); len(errs) > 0 {
		t.Fatalf("empty-vec exposition lint: %v", errs)
	}
}

func TestConcurrentObservationDuringScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dnc_conc_total", "Concurrent.")
	cv := r.CounterVec("dnc_concv_total", "Concurrent vec.", "s")
	h := r.Histogram("dnc_conc_seconds", "Concurrent hist.", DurationBounds(), SecondsScale)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				cv.With("a").Inc()
				h.Observe(uint64(j))
			}
		}()
	}
	for i := 0; i < 10; i++ {
		r.WritePrometheus(&strings.Builder{})
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if cv.With("a").Value() != 4000 {
		t.Fatalf("vec = %d, want 4000", cv.With("a").Value())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("dnc_h_total", "H.")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("content type %q", got)
	}
	if !strings.Contains(rec.Body.String(), "dnc_h_total 0") {
		t.Fatalf("handler body:\n%s", rec.Body.String())
	}
}
