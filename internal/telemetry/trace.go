package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
)

// Trace identity is deterministic on both axes: the trace ID is derived
// from the job ID (issued once at POST /v1/jobs) and each cell's span ID
// from its content key. A worker that leases the same cell twice — or two
// workers racing one reassigned cell — produce attempts under the same
// span ID, so the server can stitch every attempt into one timeline with
// no coordination beyond the headers below.

// Wire headers carrying trace context on worker-plane requests.
const (
	HeaderTraceID  = "X-DNC-Trace-Id"
	HeaderSpanID   = "X-DNC-Span-Id"
	HeaderWorkerID = "X-DNC-Worker-Id"
	HeaderAttempt  = "X-DNC-Attempt"
)

// TraceID derives the 16-hex-digit trace ID for a job.
func TraceID(jobID string) string {
	sum := sha256.Sum256([]byte("dnc-trace|" + jobID))
	return hex.EncodeToString(sum[:8])
}

// SpanID derives the 16-hex-digit span ID for a cell from its content
// digest (the SHA-256 hex of its canonical key). The prefix is already
// uniformly distributed, so the span ID is simply its first 16 digits —
// an operator can eyeball a span in a trace and grep the matching cell in
// cache/dead-letter ledgers by digest prefix.
func SpanID(cellDigest string) string {
	if len(cellDigest) >= 16 {
		return cellDigest[:16]
	}
	sum := sha256.Sum256([]byte("dnc-span|" + cellDigest))
	return hex.EncodeToString(sum[:8])
}
