// Package telemetry is the distributed service plane's observability layer:
// Prometheus text-format metrics, deterministic trace/span identity shared
// between dncserved and dncworker, and per-cell lifecycle span recording
// with a conservation check (phase durations must sum to end-to-end
// latency — the same discipline internal/core applies to stall cycles).
//
// The package is deliberately dependency-free beyond internal/obs, whose
// fixed-bucket histograms back every timing metric: one bucket layout serves
// both the simulator's cycle-domain observability and the service's
// wall-clock domain. Every type is nil-safe — a disabled telemetry plane is
// a nil pointer, and the hot path pays one pointer test (the same contract
// obs.Histogram established).
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnc/internal/obs"
)

// Counter is a monotonically increasing event counter. Safe for concurrent
// use; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec is a counter family with one label dimension (e.g. HTTP retry
// counts by status code). Children are created on first use and live for
// the registry's lifetime; the label cardinality is expected to be tiny
// (status codes, outcome names).
type CounterVec struct {
	mu       sync.Mutex
	label    string
	children map[string]*Counter
}

// With returns the child counter for one label value, creating it if new.
func (cv *CounterVec) With(value string) *Counter {
	if cv == nil {
		return nil
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c, ok := cv.children[value]
	if !ok {
		c = &Counter{}
		cv.children[value] = c
	}
	return c
}

// snapshot returns label values in sorted order with their counts.
func (cv *CounterVec) snapshot() ([]string, []uint64) {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	vals := make([]string, 0, len(cv.children))
	for v := range cv.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	counts := make([]uint64, len(vals))
	for i, v := range vals {
		counts[i] = cv.children[v].Value()
	}
	return vals, counts
}

// Histogram is a wall-clock histogram backed by an obs.Histogram bucket
// layout. Observations are recorded in a base unit (microseconds for
// *_seconds metrics, bytes for *_bytes metrics); the exposition divides by
// scale so bucket bounds surface in the metric's declared unit. Unlike the
// simulator-side obs.Histogram (single-threaded by design), this one takes
// a mutex: the service path is concurrent.
type Histogram struct {
	mu    sync.Mutex
	h     *obs.Histogram
	scale float64 // exposition divisor: raw unit → declared unit
}

// Observe records one raw-unit value. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration on a microsecond-backed histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d / time.Microsecond))
}

// Snapshot returns the backing obs snapshot (raw units).
func (h *Histogram) Snapshot() obs.HistSnapshot {
	if h == nil {
		return obs.HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Snapshot()
}

// metricKind drives the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindCounterVec
	kindGauge
	kindHistogram
)

// metric is one registered family.
type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	cfn     func() uint64 // kindCounterFunc: monotone source read at scrape
	vec     *CounterVec
	gfn     func() float64 // kindGauge: level read at scrape
	hist    *Histogram
}

// Registry is an ordered set of metric families served in registration
// order (stable exposition output, like obs.Registry). All registration
// happens at construction time, before concurrent use; scraping is safe
// concurrently with observation. A nil *Registry disables everything.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) add(m *metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name] {
		panic("telemetry: duplicate metric " + m.name)
	}
	r.byName[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns an event counter. The name must end in
// _total (the lint enforces the convention the docs promise). Nil-safe:
// a nil registry returns a nil counter whose methods no-op.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. It exists to mirror counters the service already maintains (cache
// inserts, lease reassignments) without double bookkeeping on the hot path;
// fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.add(&metric{name: name, help: help, kind: kindCounterFunc, cfn: fn})
}

// CounterVec registers a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	cv := &CounterVec{label: label, children: make(map[string]*Counter)}
	r.add(&metric{name: name, help: help, kind: kindCounterVec, vec: cv})
	return cv
}

// GaugeFunc registers a gauge read from fn at scrape time (queue depth,
// live workers, inflight cells — levels, not events).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.add(&metric{name: name, help: help, kind: kindGauge, gfn: fn})
}

// Histogram registers a histogram over the given obs-style bucket bounds in
// raw units, exposed with bounds divided by scale (pass SecondsScale with
// microsecond bounds for a *_seconds metric, 1 for *_bytes).
func (r *Registry) Histogram(name, help string, bounds []uint64, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	if scale <= 0 {
		scale = 1
	}
	h := &Histogram{h: obs.NewHistogram(name, bounds), scale: scale}
	r.add(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// SecondsScale converts microsecond-backed buckets to seconds at exposition.
const SecondsScale = 1e6

// DurationBounds is the default bucket layout for service latencies:
// 32 geometric buckets from 100µs to ~5 minutes, in microseconds.
func DurationBounds() []uint64 { return obs.ExpBounds(100, 1.6, 32) }

// SizeBounds is the default bucket layout for payload sizes: 24 geometric
// buckets from 256 bytes to ~1 GiB.
func SizeBounds() []uint64 { return obs.ExpBounds(256, 2, 24) }

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtFloat renders a sample value without exponent noise for integral
// values (keeps the exposition diff-friendly and lintable).
func fmtFloat(v float64) string {
	if v == float64(uint64(v)) && v >= 0 {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): HELP and TYPE lines before every family, histogram
// cumulative le buckets ending at +Inf with _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		typ := "counter"
		switch m.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, typ)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.cfn())
		case kindCounterVec:
			vals, counts := m.vec.snapshot()
			if len(vals) == 0 {
				// An empty family still exposes a zero sample so dashboards
				// and the lint see the declared name.
				fmt.Fprintf(&b, "%s{%s=\"\"} 0\n", m.name, m.vec.label)
			}
			for i, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", m.name, m.vec.label, escapeLabel(v), counts[i])
			}
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.gfn()))
		case kindHistogram:
			s := m.hist.Snapshot()
			var cum uint64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, fmtFloat(float64(bound)/m.hist.scale), cum)
			}
			cum += s.Counts[len(s.Bounds)]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, fmtFloat(float64(s.Sum)/m.hist.scale))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, s.N)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Names lists the registered family names in registration order — the
// declared inventory the docs golden test checks against.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.name
	}
	return out
}

// Handler serves the registry at GET /metrics semantics: text exposition
// with the conventional content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
