package sched

import (
	"math/rand"
	"sort"
	"testing"

	"dnc/internal/checkpoint"
)

// refModel is the naive reference: a map of pending deadlines, advanced by
// sorting. Everything the wheel does must match it exactly.
type refModel struct {
	now     uint64
	pending map[int]uint64
}

func newRefModel() *refModel { return &refModel{pending: map[int]uint64{}} }

func (r *refModel) schedule(id int, d uint64) { r.pending[id] = d }
func (r *refModel) cancel(id int)             { delete(r.pending, id) }

func (r *refModel) next() (uint64, bool) {
	best, have := uint64(0), false
	for _, d := range r.pending {
		if !have || d < best {
			best, have = d, true
		}
	}
	return best, have
}

func (r *refModel) advanceTo(to uint64) []int {
	type ent struct {
		id int
		d  uint64
	}
	var due []ent
	for id, d := range r.pending {
		if d <= to {
			due = append(due, ent{id, d})
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].d != due[j].d {
			return due[i].d < due[j].d
		}
		return due[i].id < due[j].id
	})
	out := make([]int, len(due))
	for i, e := range due {
		out[i] = e.id
		delete(r.pending, e.id)
	}
	r.now = to
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstRef drives both the wheel and the reference with the same
// random operation stream and compares every observable.
func checkAgainstRef(t *testing.T, seed int64, ids, ops int, maxStep, maxAhead uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := NewWheel(ids)
	ref := newRefModel()
	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // schedule (reschedule allowed)
			id := rng.Intn(ids)
			d := w.Now() + rng.Uint64()%maxAhead
			w.Schedule(id, d)
			ref.schedule(id, d)
		case 4: // cancel
			id := rng.Intn(ids)
			w.Cancel(id)
			ref.cancel(id)
		default: // advance
			to := w.Now() + rng.Uint64()%maxStep
			got := w.AdvanceTo(to)
			want := ref.advanceTo(to)
			if !equalIDs(got, want) {
				t.Fatalf("seed %d op %d: AdvanceTo(%d) = %v, reference %v", seed, op, to, got, want)
			}
		}
		if w.Len() != len(ref.pending) {
			t.Fatalf("seed %d op %d: Len = %d, reference %d", seed, op, w.Len(), len(ref.pending))
		}
		gd, gok := w.Next()
		wd, wok := ref.next()
		if gok != wok || (gok && gd != wd) {
			t.Fatalf("seed %d op %d: Next = (%d,%v), reference (%d,%v)", seed, op, gd, gok, wd, wok)
		}
		for id := 0; id < ids; id++ {
			gd, gok := w.Scheduled(id)
			wd, wok := ref.pending[id]
			if gok != wok || (gok && gd != wd) {
				t.Fatalf("seed %d op %d: Scheduled(%d) = (%d,%v), reference (%d,%v)",
					seed, op, id, gd, gok, wd, wok)
			}
		}
	}
}

// TestWheelMatchesReference drives random op sequences over several regimes:
// deadlines near the cursor (level 0 only), spanning all levels, and
// advances that leap far past everything pending.
func TestWheelMatchesReference(t *testing.T) {
	regimes := []struct {
		name              string
		maxStep, maxAhead uint64
	}{
		{"near", 8, 32},
		{"mid", 300, 5_000},
		{"levels", 100_000, 1 << 20},
		{"leap", 1 << 22, 1 << 23},
	}
	for _, rg := range regimes {
		rg := rg
		t.Run(rg.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				checkAgainstRef(t, seed, 16, 800, rg.maxStep, rg.maxAhead)
			}
		})
	}
}

// TestWheelDueOrder pins the (deadline, id) contract directly: ids scheduled
// out of order with colliding and distinct deadlines fire sorted.
func TestWheelDueOrder(t *testing.T) {
	w := NewWheel(8)
	w.Schedule(5, 100)
	w.Schedule(2, 100)
	w.Schedule(7, 40)
	w.Schedule(0, 4000) // level 1
	w.Schedule(3, 100)
	got := w.AdvanceTo(5000)
	want := []int{7, 2, 3, 5, 0}
	if !equalIDs(got, want) {
		t.Fatalf("AdvanceTo order = %v, want %v", got, want)
	}
}

// TestWheelReschedule: rescheduling moves the single pending deadline.
func TestWheelReschedule(t *testing.T) {
	w := NewWheel(4)
	w.Schedule(1, 50)
	w.Schedule(1, 9000)
	if got := w.AdvanceTo(100); len(got) != 0 {
		t.Fatalf("fired %v before the rescheduled deadline", got)
	}
	if got := w.AdvanceTo(9000); !equalIDs(got, []int{1}) {
		t.Fatalf("AdvanceTo(9000) = %v, want [1]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after firing the only entry", w.Len())
	}
}

// TestWheelDueNow: a deadline equal to the cursor fires on the next advance
// (including a zero-length advance).
func TestWheelDueNow(t *testing.T) {
	w := NewWheel(2)
	w.AdvanceTo(77)
	w.Schedule(0, 77)
	if got := w.AdvanceTo(77); !equalIDs(got, []int{0}) {
		t.Fatalf("AdvanceTo(now) = %v, want [0]", got)
	}
}

// TestWheelZeroAlloc: steady-state schedule/advance cycles must not
// allocate — the engine runs this on every machine cycle.
func TestWheelZeroAlloc(t *testing.T) {
	w := NewWheel(16)
	for i := 0; i < 16; i++ {
		w.Schedule(i, uint64(10+i*7))
	}
	w.AdvanceTo(200) // warm the scratch buffer
	allocs := testing.AllocsPerRun(1000, func() {
		base := w.Now()
		for i := 0; i < 16; i++ {
			w.Schedule(i, base+uint64(3+i*5))
		}
		w.Cancel(3)
		w.AdvanceTo(base + 100)
	})
	if allocs != 0 {
		t.Fatalf("steady-state wheel ops allocate %.1f times per run", allocs)
	}
}

// TestWheelSnapshotRestore: a snapshot taken mid-sequence restores into a
// fresh wheel that then fires identically to the original.
func TestWheelSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewWheel(12)
	for op := 0; op < 200; op++ {
		switch rng.Intn(3) {
		case 0:
			w.Schedule(rng.Intn(12), w.Now()+rng.Uint64()%100_000)
		case 1:
			w.Cancel(rng.Intn(12))
		default:
			w.AdvanceTo(w.Now() + rng.Uint64()%5_000)
		}
	}
	e := checkpoint.NewEncoder()
	w.Snapshot(e)
	d, err := checkpoint.Decode(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWheel(12)
	if err := w2.Restore(d); err != nil {
		t.Fatal(err)
	}
	if w2.Now() != w.Now() || w2.Len() != w.Len() {
		t.Fatalf("restored (now=%d len=%d), original (now=%d len=%d)",
			w2.Now(), w2.Len(), w.Now(), w.Len())
	}
	for w.Len() > 0 {
		to := w.Now() + 1000
		a, b := w.AdvanceTo(to), w2.AdvanceTo(to)
		if !equalIDs(a, b) {
			t.Fatalf("post-restore divergence at %d: %v vs %v", to, a, b)
		}
		// AdvanceTo reuses one scratch buffer per wheel, so compare before
		// the next call, then continue (done by loop structure).
	}
}

// TestWheelRestoreRejectsCorruptSnapshots: structural validation failures
// must come back as errors, never as a corrupted wheel.
func TestWheelRestoreRejectsCorruptSnapshots(t *testing.T) {
	mk := func(build func(e *checkpoint.Encoder)) error {
		e := checkpoint.NewEncoder()
		build(e)
		d, err := checkpoint.Decode(e.Marshal())
		if err != nil {
			return err
		}
		return NewWheel(4).Restore(d)
	}
	cases := map[string]func(e *checkpoint.Encoder){
		"wrong universe": func(e *checkpoint.Encoder) {
			e.Begin("sched.wheel")
			e.U64(0)
			e.Int(8)
			e.Int(0)
			e.End()
		},
		"id out of range": func(e *checkpoint.Encoder) {
			e.Begin("sched.wheel")
			e.U64(0)
			e.Int(4)
			e.Int(1)
			e.Int(9)
			e.U64(5)
			e.End()
		},
		"deadline behind cursor": func(e *checkpoint.Encoder) {
			e.Begin("sched.wheel")
			e.U64(100)
			e.Int(4)
			e.Int(1)
			e.Int(0)
			e.U64(50)
			e.End()
		},
		"duplicate id": func(e *checkpoint.Encoder) {
			e.Begin("sched.wheel")
			e.U64(0)
			e.Int(4)
			e.Int(2)
			e.Int(1)
			e.U64(5)
			e.Int(1)
			e.U64(9)
			e.End()
		},
	}
	for name, build := range cases {
		if err := mk(build); err == nil {
			t.Errorf("%s: Restore accepted a corrupt snapshot", name)
		}
	}
}

// FuzzWheelAdvance interprets fuzz bytes as an op stream against both the
// wheel and the reference model; any divergence or panic is a finding.
func FuzzWheelAdvance(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x80, 0x02, 0xFF})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		const ids = 8
		w := NewWheel(ids)
		ref := newRefModel()
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], uint64(data[i+1])
			switch op % 3 {
			case 0: // schedule: spread deadlines across levels via squaring
				id := int(op/3) % ids
				d := w.Now() + arg*arg*16
				w.Schedule(id, d)
				ref.schedule(id, d)
			case 1:
				id := int(op/3) % ids
				w.Cancel(id)
				ref.cancel(id)
			default:
				to := w.Now() + arg*arg*8
				got := w.AdvanceTo(to)
				want := ref.advanceTo(to)
				if !equalIDs(got, want) {
					t.Fatalf("op %d: AdvanceTo(%d) = %v, reference %v", i, to, got, want)
				}
			}
			if w.Len() != len(ref.pending) {
				t.Fatalf("op %d: Len %d vs reference %d", i, w.Len(), len(ref.pending))
			}
			gd, gok := w.Next()
			wd, wok := ref.next()
			if gok != wok || (gok && gd != wd) {
				t.Fatalf("op %d: Next (%d,%v) vs reference (%d,%v)", i, gd, gok, wd, wok)
			}
		}
	})
}
