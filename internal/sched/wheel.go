// Package sched provides a hierarchical timing wheel: a calendar queue of
// integer IDs keyed by absolute cycle deadlines. The simulation engine uses
// it as the per-core wake schedule — each sleeping core is scheduled at the
// cycle of its next required full tick — so advancing the machine touches
// only cores with work at the current cycle.
//
// The wheel is sized for that workload: a small, fixed ID universe (one ID
// per core), deadlines that are near the cursor (wake times are bounded by
// component latencies), and a hot path that must not allocate. Schedule,
// Cancel, and cursor advancement are O(1) amortized; empty regions are
// skipped with per-level occupancy bitmaps rather than slot-by-slot
// stepping, so advancing over an arbitrarily long quiet stretch costs a few
// bitmap scans.
package sched

import (
	"fmt"
	"math/bits"

	"dnc/internal/checkpoint"
)

const (
	slotBits = 6
	slots    = 1 << slotBits // 64 slots per level
	slotMask = slots - 1
	levels   = 4 // horizon: 2^24 cycles ahead of the cursor
)

// horizon is the furthest a deadline may lie ahead of the cursor.
const horizon = 1 << (slotBits * levels)

// Wheel is a hierarchical timing wheel over a fixed universe of integer
// IDs. Each ID holds at most one deadline at a time (scheduling again moves
// it). Not safe for concurrent use.
type Wheel struct {
	now uint64 // cursor: all deadlines < now have fired

	// Per-ID intrusive doubly-linked list nodes (slot chains), plus the
	// deadline and membership flag. Fixed at construction: no allocation on
	// Schedule/Cancel/AdvanceTo.
	deadline []uint64
	next     []int32
	prev     []int32 // ^slotIndex when the node is a chain head
	member   []bool

	// head[l][s] is the first ID chained in level l, slot s (-1 when
	// empty); occ[l] is the bitmap of nonempty slots in level l.
	head [levels][slots]int32
	occ  [levels]uint64

	count   int
	scratch []int // due-ID buffer reused across AdvanceTo calls

	// memo caches Next's answer while memoValid: memo is the exact minimum
	// pending deadline (count > 0 implied). Kept valid across the common
	// mutations — scheduling a later deadline leaves it untouched, an
	// earlier one lowers it in place — and dropped whenever the entry that
	// holds the minimum moves, cancels, or fires.
	memo      uint64
	memoValid bool
}

// NewWheel returns a wheel over IDs 0..ids-1 with the cursor at cycle 0.
func NewWheel(ids int) *Wheel {
	if ids <= 0 {
		panic(fmt.Sprintf("sched: NewWheel(%d): need at least one ID", ids))
	}
	w := &Wheel{
		deadline: make([]uint64, ids),
		next:     make([]int32, ids),
		prev:     make([]int32, ids),
		member:   make([]bool, ids),
		scratch:  make([]int, 0, ids),
	}
	for l := 0; l < levels; l++ {
		for s := 0; s < slots; s++ {
			w.head[l][s] = -1
		}
	}
	return w
}

// IDs returns the size of the ID universe.
func (w *Wheel) IDs() int { return len(w.deadline) }

// Now returns the cursor: the cycle the wheel has advanced to.
func (w *Wheel) Now() uint64 { return w.now }

// Len returns the number of scheduled IDs.
func (w *Wheel) Len() int { return w.count }

// Scheduled returns id's pending deadline, if any.
func (w *Wheel) Scheduled(id int) (uint64, bool) {
	if !w.member[id] {
		return 0, false
	}
	return w.deadline[id], true
}

// levelSlot places a deadline relative to the cursor: the level whose slot
// granularity still distinguishes it from the cursor, and the slot index
// within that level.
func (w *Wheel) levelSlot(deadline uint64) (int, int) {
	delta := deadline - w.now
	for l := 0; l < levels; l++ {
		if delta < 1<<(slotBits*(l+1)) {
			return l, int(deadline >> (slotBits * l) & slotMask)
		}
	}
	panic(fmt.Sprintf("sched: deadline %d is %d cycles past the cursor (horizon %d)",
		deadline, delta, uint64(horizon)))
}

// link pushes id onto the chain of (level, slot).
func (w *Wheel) link(id int, level, slot int) {
	si := int32(level*slots + slot)
	h := w.head[level][slot]
	w.next[id] = h
	w.prev[id] = ^si
	if h >= 0 {
		w.prev[h] = int32(id)
	}
	w.head[level][slot] = int32(id)
	w.occ[level] |= 1 << uint(slot)
}

// unlink removes id from whatever chain holds it.
func (w *Wheel) unlink(id int) {
	n, p := w.next[id], w.prev[id]
	if n >= 0 {
		w.prev[n] = p
	}
	if p >= 0 {
		w.next[p] = n
	} else {
		si := int(^p)
		level, slot := si/slots, si%slots
		w.head[level][slot] = n
		if n < 0 {
			w.occ[level] &^= 1 << uint(slot)
		}
	}
}

// Schedule sets id's deadline, replacing any pending one. The deadline must
// be at or after the cursor (a due-now deadline fires on the next advance)
// and within the wheel's horizon.
func (w *Wheel) Schedule(id int, deadline uint64) {
	if deadline < w.now {
		panic(fmt.Sprintf("sched: Schedule(%d, %d) behind cursor %d", id, deadline, w.now))
	}
	if w.member[id] {
		if w.memoValid && w.deadline[id] == w.memo {
			w.memoValid = false // the minimum may be moving away
		}
		w.unlink(id)
		w.count--
	}
	l, s := w.levelSlot(deadline)
	w.link(id, l, s)
	w.deadline[id] = deadline
	w.member[id] = true
	w.count++
	if w.memoValid && deadline < w.memo {
		w.memo = deadline
	} else if !w.memoValid && w.count == 1 {
		w.memo, w.memoValid = deadline, true
	}
}

// Cancel removes id's pending deadline, if any.
func (w *Wheel) Cancel(id int) {
	if !w.member[id] {
		return
	}
	if w.memoValid && w.deadline[id] == w.memo {
		w.memoValid = false
	}
	w.unlink(id)
	w.member[id] = false
	w.count--
}

// Next returns the earliest pending deadline. Cascading is lazy (entries
// move to lower levels only when the cursor reaches them in AdvanceTo), and
// an entry whose delta approaches a level's full span can share a slot with
// the cursor itself, so no single slot is guaranteed to hold the minimum:
// Next scans every occupied slot, walking chains via the occupancy bitmaps.
// That is O(pending), which the engine's use keeps trivially small (one
// entry per sleeping core); Schedule, Cancel, and the AdvanceTo firing path
// stay O(1) amortized.
// The engine calls Next once per poll boundary, usually with no mutation in
// between; the memo turns those repeats into a branch. A full scan runs only
// after the minimum entry itself moved or fired.
func (w *Wheel) Next() (uint64, bool) {
	if w.memoValid {
		return w.memo, true
	}
	if w.count == 0 {
		return 0, false
	}
	best := uint64(0)
	have := false
	for l := 0; l < levels; l++ {
		for occ := w.occ[l]; occ != 0; occ &= occ - 1 {
			s := bits.TrailingZeros64(occ)
			for id := w.head[l][s]; id >= 0; id = w.next[id] {
				if d := w.deadline[id]; !have || d < best {
					best, have = d, true
				}
			}
		}
	}
	if have {
		w.memo, w.memoValid = best, true
	}
	return best, have
}

// AdvanceTo moves the cursor to cycle `to` and returns every ID whose
// deadline is <= to, ordered by (deadline, id). The order is part of the
// contract: the engine wakes cores in a deterministic sequence regardless
// of scheduling history. The returned slice is reused by the next call.
func (w *Wheel) AdvanceTo(to uint64) []int {
	if to < w.now {
		panic(fmt.Sprintf("sched: AdvanceTo(%d) behind cursor %d", to, w.now))
	}
	due := w.scratch[:0]
	for w.count > 0 {
		d, ok := w.Next()
		if !ok || d > to {
			break
		}
		// Move the cursor to the earliest deadline, cascade every higher
		// level's cursor slot down (equal deadlines can be filed at
		// different levels depending on when they were scheduled), then
		// drain the exact level-0 slot.
		w.now = d
		for l := levels - 1; l >= 1; l-- {
			if s := int(d >> (slotBits * l) & slotMask); w.head[l][s] >= 0 {
				w.refile(l, s)
			}
		}
		s := int(d & slotMask)
		for id := w.head[0][s]; id >= 0; {
			n := w.next[id]
			if w.deadline[id] == d {
				w.unlink(int(id))
				w.member[id] = false
				w.count--
				due = append(due, int(id))
			}
			id = n
		}
		w.memoValid = false // the minimum just fired
	}
	w.now = to
	// Deadline groups were appended in increasing deadline order; sort each
	// group's IDs in place (groups are tiny — insertion sort, no allocation).
	insertionSortTail(due, w.deadline)
	w.scratch = due
	return due
}

// refile re-links every entry of (level, slot) against the current cursor,
// pushing entries into lower levels as their deadlines come near.
func (w *Wheel) refile(level, slot int) {
	id := w.head[level][slot]
	w.head[level][slot] = -1
	w.occ[level] &^= 1 << uint(slot)
	for id >= 0 {
		n := w.next[id]
		l, s := w.levelSlot(w.deadline[id])
		w.link(int(id), l, s)
		id = n
	}
}

// insertionSortTail sorts ids by (deadline, id). Deadlines arrive almost
// sorted (AdvanceTo appends in deadline order), so insertion sort is both
// allocation-free and near-linear here.
func insertionSortTail(ids []int, deadline []uint64) {
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		dv := deadline[v]
		j := i - 1
		for j >= 0 && (deadline[ids[j]] > dv || (deadline[ids[j]] == dv && ids[j] > v)) {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// Snapshot serializes the wheel (cursor plus pending deadlines) into a
// checkpoint section. Restore rebuilds the slot structure, so the encoding
// is independent of chain order.
func (w *Wheel) Snapshot(e *checkpoint.Encoder) {
	e.Begin("sched.wheel")
	e.U64(w.now)
	e.Int(len(w.deadline))
	e.Int(w.count)
	for id := range w.deadline {
		if w.member[id] {
			e.Int(id)
			e.U64(w.deadline[id])
		}
	}
	e.End()
}

// Restore replaces the wheel's state with a snapshot written by Snapshot.
func (w *Wheel) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("sched.wheel"); err != nil {
		return err
	}
	now := d.U64()
	ids := d.Int()
	count := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if ids != len(w.deadline) {
		return fmt.Errorf("sched: snapshot has %d IDs, wheel has %d", ids, len(w.deadline))
	}
	if count < 0 || count > ids {
		return fmt.Errorf("sched: snapshot count %d outside 0..%d", count, ids)
	}
	// Reset in place, then re-link each pending entry against the restored
	// cursor.
	for l := 0; l < levels; l++ {
		for s := 0; s < slots; s++ {
			w.head[l][s] = -1
		}
		w.occ[l] = 0
	}
	for id := range w.member {
		w.member[id] = false
	}
	w.now = now
	w.count = 0
	w.memoValid = false
	for i := 0; i < count; i++ {
		id := d.Int()
		deadline := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		if id < 0 || id >= ids {
			return fmt.Errorf("sched: snapshot ID %d outside 0..%d", id, ids-1)
		}
		if w.member[id] {
			return fmt.Errorf("sched: snapshot repeats ID %d", id)
		}
		if deadline < now || deadline-now >= horizon {
			return fmt.Errorf("sched: snapshot deadline %d outside cursor %d horizon", deadline, now)
		}
		w.Schedule(id, deadline)
	}
	return d.End()
}
