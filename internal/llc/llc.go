// Package llc models the shared banked last-level cache, including the
// paper's DV-LLC extension: a dynamically virtualized store for per-block
// branch footprints (BFs) needed by the BTB prefetcher under variable-length
// ISAs. When a set holds at least one instruction block, its (then-)LRU way
// is re-purposed as a BF-holder; when the last instruction block leaves the
// set, the way reverts to a normal block-holder (Section V.D).
package llc

import (
	"fmt"

	"dnc/internal/isa"
	"dnc/internal/obs"
)

// Config describes the LLC.
type Config struct {
	SizeBytes int
	Ways      int
	Banks     int
	// AccessCycles is the bank access latency (18 in the paper).
	AccessCycles uint64
	// BankServiceCycles is each access's occupancy of its bank; a bank
	// over-subscribed within a window queues later requests. Useless
	// prefetch traffic raising the observed LLC latency (Figure 5) flows
	// through this and the NoC contention model.
	BankServiceCycles uint64
	// DVEnabled turns on DV-LLC branch-footprint virtualization.
	DVEnabled bool
	// BFsPerSet caps how many footprints one BF-holder way stores. A 64-byte
	// way holds 21 three-byte BFs direct-mapped by way (the paper), or 10
	// with tags when associativity exceeds 21. Figure 9 sweeps small values.
	BFsPerSet int
}

// DefaultConfig matches the paper's 32 MB, 16-way, 16-bank LLC.
func DefaultConfig() Config {
	return Config{
		SizeBytes:         32 << 20,
		Ways:              16,
		Banks:             16,
		AccessCycles:      18,
		BankServiceCycles: 8,
		DVEnabled:         false,
		BFsPerSet:         21,
	}
}

type line struct {
	block  isa.BlockID
	valid  bool
	lru    uint64
	isInst bool
}

type bfEntry struct {
	block isa.BlockID
	bf    isa.BF
}

type set struct {
	lines []line
	// bfWay is the way pinned as BF-holder, or -1.
	bfWay int
	bfs   []bfEntry
}

// Stats are the LLC's accounting counters.
type Stats struct {
	InstAccesses, InstHits uint64
	DataAccesses, DataHits uint64
	Evictions              uint64
	BFStores, BFStoreFails uint64
	BFLoads, BFLoadHits    uint64
	BFTransitions          uint64
}

// bankWindow tracks a bank's service occupancy over a 64-cycle window.
type bankWindow struct {
	window uint64
	busy   uint64
}

// LLC is the shared last-level cache. Not safe for concurrent use.
//
// Residency tags are mirrored in a packed side array (one word per way, a
// shifted block ID with an always-set valid bit; 0 marks an empty way), so
// the per-access way scan reads w contiguous words instead of striding
// across 32-byte line records. The mirror is derived state: every write to a
// line's block/valid pair maintains it, and Restore rebuilds it.
type LLC struct {
	cfg      Config
	banks    int
	setsPer  int // sets per bank
	sets     []set
	tags     []uint64 // tagKey per (set, way); 0 = invalid
	hints    []uint8  // last way find hit per set — a guess, verified on use
	bankOcc  []bankWindow
	clock    uint64
	stats    Stats
	queueSum uint64

	// queueHist, when set, observes every access's bank queueing delay
	// (zeros included, so the histogram shows the delayed fraction).
	queueHist *obs.Histogram
}

// SetObs attaches a bank-queue-delay histogram (nil detaches).
func (c *LLC) SetObs(queue *obs.Histogram) { c.queueHist = queue }

// New returns an empty LLC.
func New(cfg Config) *LLC {
	if cfg.SizeBytes == 0 {
		cfg = DefaultConfig()
	}
	if cfg.AccessCycles == 0 {
		cfg.AccessCycles = 18
	}
	if cfg.BFsPerSet == 0 {
		cfg.BFsPerSet = 21
	}
	totalSets := cfg.SizeBytes / (isa.BlockBytes * cfg.Ways)
	if cfg.Banks <= 0 || totalSets%cfg.Banks != 0 {
		panic(fmt.Sprintf("llc: %d sets not divisible into %d banks", totalSets, cfg.Banks))
	}
	setsPer := totalSets / cfg.Banks
	if setsPer&(setsPer-1) != 0 {
		panic(fmt.Sprintf("llc: sets per bank %d not a power of two", setsPer))
	}
	c := &LLC{
		cfg:     cfg,
		banks:   cfg.Banks,
		setsPer: setsPer,
		sets:    make([]set, totalSets),
		tags:    make([]uint64, totalSets*cfg.Ways),
		hints:   make([]uint8, totalSets),
		bankOcc: make([]bankWindow, cfg.Banks),
	}
	for i := range c.sets {
		c.sets[i] = set{lines: make([]line, cfg.Ways), bfWay: -1}
	}
	return c
}

// BankDelay accounts one access against the block's bank at the given cycle
// and returns the queueing delay caused by bank over-subscription within the
// current 64-cycle window.
func (c *LLC) BankDelay(b isa.BlockID, cycle uint64) uint64 {
	if c.cfg.BankServiceCycles == 0 {
		return 0
	}
	bw := &c.bankOcc[c.BankOf(b)]
	if w := cycle >> 6; w != bw.window {
		bw.window = w
		bw.busy = 0
	}
	bw.busy += c.cfg.BankServiceCycles
	var d uint64
	if bw.busy > 64 {
		d = bw.busy - 64
		c.queueSum += d
	}
	c.queueHist.Observe(d)
	return d
}

// QueuedCycles returns cumulative bank queueing delay.
func (c *LLC) QueuedCycles() uint64 { return c.queueSum }

// Config returns the configuration.
func (c *LLC) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *LLC) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents (used at
// the warm-up/measurement boundary).
func (c *LLC) ResetStats() { c.stats = Stats{} }

// BankOf returns the bank (home tile) of a block.
func (c *LLC) BankOf(b isa.BlockID) int { return int(uint64(b) % uint64(c.banks)) }

func (c *LLC) setOf(b isa.BlockID) int {
	bank := c.BankOf(b)
	idx := int(uint64(b)/uint64(c.banks)) & (c.setsPer - 1)
	return bank*c.setsPer + idx
}

// tagKey packs a block and an always-set valid bit into one comparable word.
func tagKey(b isa.BlockID) uint64 { return uint64(b)<<1 | 1 }

// find locates block b in set si via the packed tag mirror. The per-set MRU
// hint short-circuits the way scan for re-probes of a recently found block
// (loops hammer the same instruction blocks); the hint is only ever a guess,
// verified against the tag mirror, so a stale one costs a scan but can never
// misidentify a line.
func (c *LLC) find(si int, b isa.BlockID) *line {
	base := si * c.cfg.Ways
	key := tagKey(b)
	if h := int(c.hints[si]); h < c.cfg.Ways && c.tags[base+h] == key {
		return &c.sets[si].lines[h]
	}
	for i, t := range c.tags[base : base+c.cfg.Ways] {
		if t == key {
			c.hints[si] = uint8(i)
			return &c.sets[si].lines[i]
		}
	}
	return nil
}

// setTag maintains the tag mirror for a write to way w of set si; called by
// everything that flips a line's block/valid pair.
func (c *LLC) setTag(si, w int, l line) {
	if l.valid {
		c.tags[si*c.cfg.Ways+w] = tagKey(l.block)
	} else {
		c.tags[si*c.cfg.Ways+w] = 0
	}
}

// find is the mirror-free reference scan, kept for Audit to cross-check the
// packed tags against the authoritative line records.
func (s *set) find(b isa.BlockID) *line {
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].block == b {
			return &s.lines[i]
		}
	}
	return nil
}

// Contains reports residency without updating recency.
func (c *LLC) Contains(b isa.BlockID) bool { return c.find(c.setOf(b), b) != nil }

// Access performs a demand lookup, updating recency and hit statistics.
func (c *LLC) Access(b isa.BlockID, isInst bool) bool {
	if isInst {
		c.stats.InstAccesses++
	} else {
		c.stats.DataAccesses++
	}
	l := c.find(c.setOf(b), b)
	if l == nil {
		return false
	}
	c.clock++
	l.lru = c.clock
	if isInst {
		c.stats.InstHits++
	} else {
		c.stats.DataHits++
	}
	return true
}

// Insert fills block b. In DV mode, the first instruction block entering a
// set converts the set's LRU way into a BF-holder.
func (c *LLC) Insert(b isa.BlockID, isInst bool) {
	si := c.setOf(b)
	s := &c.sets[si]
	if l := c.find(si, b); l != nil {
		c.clock++
		l.lru = c.clock
		l.isInst = l.isInst || isInst
		return
	}
	if c.cfg.DVEnabled && isInst && s.bfWay < 0 {
		c.transitionToBFHolder(si)
	}
	w := c.victimWay(s)
	if s.lines[w].valid {
		c.stats.Evictions++
		evictedInst := s.lines[w].isInst
		s.dropBF(s.lines[w].block)
		s.lines[w] = line{}
		c.setTag(si, w, s.lines[w])
		if evictedInst {
			c.maybeReleaseBFHolder(s)
		}
	}
	c.clock++
	s.lines[w] = line{block: b, valid: true, lru: c.clock, isInst: isInst}
	c.setTag(si, w, s.lines[w])
}

// victimWay picks the LRU way, skipping the pinned BF-holder.
func (c *LLC) victimWay(s *set) int {
	victim := -1
	for i := range s.lines {
		if i == s.bfWay {
			continue
		}
		if !s.lines[i].valid {
			return i
		}
		if victim < 0 || s.lines[i].lru < s.lines[victim].lru {
			victim = i
		}
	}
	return victim
}

// transitionToBFHolder evicts the current LRU way (if utilized) and pins it
// as the set's BF-holder.
func (c *LLC) transitionToBFHolder(si int) {
	s := &c.sets[si]
	w := c.victimWay(s)
	if s.lines[w].valid {
		c.stats.Evictions++
		s.dropBF(s.lines[w].block)
		s.lines[w] = line{}
		c.setTag(si, w, s.lines[w])
	}
	s.bfWay = w
	c.stats.BFTransitions++
}

// maybeReleaseBFHolder reverts the BF-holder way to a block-holder when the
// set no longer contains instruction blocks.
func (c *LLC) maybeReleaseBFHolder(s *set) {
	if s.bfWay < 0 {
		return
	}
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].isInst {
			return
		}
	}
	s.bfWay = -1
	s.bfs = s.bfs[:0]
}

func (s *set) dropBF(b isa.BlockID) {
	for i := range s.bfs {
		if s.bfs[i].block == b {
			s.bfs[i] = s.bfs[len(s.bfs)-1]
			s.bfs = s.bfs[:len(s.bfs)-1]
			return
		}
	}
}

// StoreBF records the branch footprint of a resident instruction block in
// the set's BF-holder. It reports whether the footprint was stored; failures
// (no BF-holder, block not resident, holder full) are the "uncovered"
// footprints of Figure 9.
func (c *LLC) StoreBF(b isa.BlockID, bf isa.BF) bool {
	c.stats.BFStores++
	si := c.setOf(b)
	s := &c.sets[si]
	if !c.cfg.DVEnabled || s.bfWay < 0 || c.find(si, b) == nil {
		c.stats.BFStoreFails++
		return false
	}
	for i := range s.bfs {
		if s.bfs[i].block == b {
			s.bfs[i].bf = bf
			return true
		}
	}
	if len(s.bfs) >= c.cfg.BFsPerSet || len(s.bfs) >= c.cfg.Ways-1 {
		c.stats.BFStoreFails++
		return false
	}
	s.bfs = append(s.bfs, bfEntry{block: b, bf: bf})
	return true
}

// LoadBF fetches the stored footprint of a block, as done alongside the
// block's data response on an L1i fill from the LLC.
func (c *LLC) LoadBF(b isa.BlockID) (isa.BF, bool) {
	c.stats.BFLoads++
	s := &c.sets[c.setOf(b)]
	for i := range s.bfs {
		if s.bfs[i].block == b {
			c.stats.BFLoadHits++
			return s.bfs[i].bf, true
		}
	}
	return isa.BF{}, false
}

// InstBlocks returns the number of resident instruction blocks (test hook).
func (c *LLC) InstBlocks() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].lines {
			if c.sets[i].lines[j].valid && c.sets[i].lines[j].isInst {
				n++
			}
		}
	}
	return n
}

// BFHolderSets returns how many sets currently pin a BF-holder way.
func (c *LLC) BFHolderSets() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].bfWay >= 0 {
			n++
		}
	}
	return n
}

// AccessCycles returns the configured bank latency.
func (c *LLC) AccessCycles() uint64 { return c.cfg.AccessCycles }
