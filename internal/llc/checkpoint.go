package llc

import (
	"fmt"

	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Snapshot serialises the LLC's full state: clock, stats, bank occupancy
// windows, and every set's lines, BF-holder pin, and stored footprints.
func (c *LLC) Snapshot(e *checkpoint.Encoder) {
	e.Begin("llc")
	e.Int(c.banks)
	e.Int(c.setsPer)
	e.Int(c.cfg.Ways)
	e.U64(c.clock)
	e.U64(c.queueSum)
	e.Struct(&c.stats)
	for i := range c.bankOcc {
		e.U64(c.bankOcc[i].window)
		e.U64(c.bankOcc[i].busy)
	}
	for i := range c.sets {
		s := &c.sets[i]
		for j := range s.lines {
			l := &s.lines[j]
			e.U64(uint64(l.block))
			e.Bool(l.valid)
			e.U64(l.lru)
			e.Bool(l.isInst)
		}
		e.Int(s.bfWay)
		e.Int(len(s.bfs))
		for _, bf := range s.bfs {
			e.U64(uint64(bf.block))
			e.U32(bf.bf.Pack())
		}
	}
	e.End()
}

// Restore loads state written by Snapshot. Geometry must match.
func (c *LLC) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("llc"); err != nil {
		return err
	}
	banks, setsPer, ways := d.Int(), d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if banks != c.banks || setsPer != c.setsPer || ways != c.cfg.Ways {
		return fmt.Errorf("%w: LLC geometry %d banks x %d sets x %d ways in snapshot, machine has %dx%dx%d",
			checkpoint.ErrCorrupt, banks, setsPer, ways, c.banks, c.setsPer, c.cfg.Ways)
	}
	c.clock = d.U64()
	c.queueSum = d.U64()
	if err := d.Struct(&c.stats); err != nil {
		return err
	}
	for i := range c.bankOcc {
		c.bankOcc[i].window = d.U64()
		c.bankOcc[i].busy = d.U64()
	}
	for i := range c.sets {
		s := &c.sets[i]
		for j := range s.lines {
			l := &s.lines[j]
			l.block = isa.BlockID(d.U64())
			l.valid = d.Bool()
			l.lru = d.U64()
			l.isInst = d.Bool()
			c.setTag(i, j, *l)
		}
		s.bfWay = d.Int()
		if d.Err() == nil && (s.bfWay < -1 || s.bfWay >= ways) {
			return fmt.Errorf("%w: set %d BF-holder way %d out of range",
				checkpoint.ErrCorrupt, i, s.bfWay)
		}
		n := d.Count(12)
		s.bfs = s.bfs[:0]
		for k := 0; k < n; k++ {
			s.bfs = append(s.bfs, bfEntry{
				block: isa.BlockID(d.U64()),
				bf:    isa.UnpackBF(d.U32()),
			})
		}
	}
	return d.End()
}

// Audit checks the DV-LLC structural invariants:
//
//   - the packed tag mirror agrees with every line's block/valid pair (the
//     fast way scan must never see different residency than the records);
//   - a pinned BF-holder way index is within the set's ways;
//   - a set never stores more footprints than BFsPerSet or Ways-1 (the
//     holder way cannot hold a footprint for itself);
//   - every stored footprint describes a block resident in its own set —
//     eviction must drop the footprint with the block;
//   - a set holding footprints (or pinning a holder) has at least one valid
//     instruction line, since the last departing instruction block releases
//     the holder.
//
// Each violation is returned as its own error.
func (c *LLC) Audit() []error {
	var errs []error
	for i := range c.sets {
		s := &c.sets[i]
		for j := range s.lines {
			want := uint64(0)
			if s.lines[j].valid {
				want = tagKey(s.lines[j].block)
			}
			if got := c.tags[i*c.cfg.Ways+j]; got != want {
				errs = append(errs, fmt.Errorf("llc: set %d way %d tag mirror %#x disagrees with line (%#x)",
					i, j, got, want))
			}
		}
		if s.bfWay >= len(s.lines) || s.bfWay < -1 {
			errs = append(errs, fmt.Errorf("llc: set %d BF-holder way %d out of range [0,%d)",
				i, s.bfWay, len(s.lines)))
			continue
		}
		if s.bfWay < 0 {
			if len(s.bfs) != 0 {
				errs = append(errs, fmt.Errorf("llc: set %d stores %d footprints with no BF-holder way",
					i, len(s.bfs)))
			}
			continue
		}
		if len(s.bfs) > c.cfg.BFsPerSet || len(s.bfs) > c.cfg.Ways-1 {
			errs = append(errs, fmt.Errorf("llc: set %d stores %d footprints, cap is min(%d, ways-1=%d)",
				i, len(s.bfs), c.cfg.BFsPerSet, c.cfg.Ways-1))
		}
		hasInst := false
		for j := range s.lines {
			if s.lines[j].valid && s.lines[j].isInst {
				hasInst = true
				break
			}
		}
		if !hasInst {
			errs = append(errs, fmt.Errorf("llc: set %d pins a BF-holder with no resident instruction block", i))
		}
		for _, bf := range s.bfs {
			if l := s.find(bf.block); l == nil {
				errs = append(errs, fmt.Errorf("llc: set %d stores a footprint for block %#x that is not resident",
					i, uint64(bf.block)))
			}
		}
	}
	return errs
}
