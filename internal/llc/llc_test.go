package llc

import (
	"testing"

	"dnc/internal/isa"
)

// tiny returns a small LLC: 2 banks, 4 sets/bank, 4 ways.
func tiny(dv bool, bfsPerSet int) *LLC {
	return New(Config{
		SizeBytes:    2 * 4 * 4 * isa.BlockBytes,
		Ways:         4,
		Banks:        2,
		AccessCycles: 18,
		DVEnabled:    dv,
		BFsPerSet:    bfsPerSet,
	})
}

// blockInSet returns the i-th distinct block mapping to (bank, set).
func blockInSet(c *LLC, bank, set, i int) isa.BlockID {
	return isa.BlockID(bank + c.banks*(set+c.setsPer*i))
}

func TestAccessHitMiss(t *testing.T) {
	c := tiny(false, 0)
	b := blockInSet(c, 0, 0, 0)
	if c.Access(b, true) {
		t.Fatal("hit in empty LLC")
	}
	c.Insert(b, true)
	if !c.Access(b, true) {
		t.Fatal("miss after insert")
	}
	s := c.Stats()
	if s.InstAccesses != 2 || s.InstHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny(false, 0)
	blocks := make([]isa.BlockID, 5)
	for i := range blocks {
		blocks[i] = blockInSet(c, 0, 0, i)
	}
	for _, b := range blocks[:4] {
		c.Insert(b, false)
	}
	c.Access(blocks[0], false) // protect 0
	c.Insert(blocks[4], false) // evicts blocks[1]
	if !c.Contains(blocks[0]) || c.Contains(blocks[1]) {
		t.Fatal("LRU eviction wrong")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDVTransitionOnInstInsert(t *testing.T) {
	c := tiny(true, 21)
	// Fill a set with data blocks.
	for i := 0; i < 4; i++ {
		c.Insert(blockInSet(c, 0, 1, i), false)
	}
	if c.BFHolderSets() != 0 {
		t.Fatal("BF holder before any instruction block")
	}
	// First instruction block converts the LRU way to BF-holder: one data
	// block is displaced for the holder and another way is the victim for
	// the fill itself.
	inst := blockInSet(c, 0, 1, 10)
	c.Insert(inst, true)
	if c.BFHolderSets() != 1 {
		t.Fatal("no BF holder after instruction insert")
	}
	// Effective capacity for blocks in that set is now 3.
	resident := 0
	for i := 0; i < 4; i++ {
		if c.Contains(blockInSet(c, 0, 1, i)) {
			resident++
		}
	}
	if resident != 2 { // 4 - holder - fill victim
		t.Fatalf("resident data blocks = %d, want 2", resident)
	}
	if !c.Contains(inst) {
		t.Fatal("instruction block missing")
	}
}

func TestDVReleaseWhenLastInstLeaves(t *testing.T) {
	c := tiny(true, 21)
	inst := blockInSet(c, 0, 2, 0)
	c.Insert(inst, true)
	if c.BFHolderSets() != 1 {
		t.Fatal("holder not pinned")
	}
	// Evict the instruction block by filling the set with data blocks
	// (effective 3 ways while pinned).
	for i := 1; i <= 3; i++ {
		c.Insert(blockInSet(c, 0, 2, i), false)
	}
	if c.Contains(inst) {
		t.Fatal("instruction block should have been evicted")
	}
	if c.BFHolderSets() != 0 {
		t.Fatal("holder not released after last instruction block left")
	}
}

func TestStoreLoadBF(t *testing.T) {
	c := tiny(true, 21)
	b := blockInSet(c, 1, 0, 0)
	c.Insert(b, true)
	var bf isa.BF
	bf.Add(12)
	bf.Add(40)
	if !c.StoreBF(b, bf) {
		t.Fatal("StoreBF failed for resident instruction block")
	}
	got, ok := c.LoadBF(b)
	if !ok || got != bf {
		t.Fatalf("LoadBF = %+v, %v", got, ok)
	}
	// Update in place.
	bf.Add(60)
	if !c.StoreBF(b, bf) {
		t.Fatal("BF update failed")
	}
	got, _ = c.LoadBF(b)
	if got.Count != 3 {
		t.Fatalf("updated BF = %+v", got)
	}
}

func TestStoreBFFailsWithoutResidency(t *testing.T) {
	c := tiny(true, 21)
	other := blockInSet(c, 1, 1, 0)
	c.Insert(other, true) // pin holder in this set
	absent := blockInSet(c, 1, 1, 5)
	if c.StoreBF(absent, isa.BF{}) {
		t.Fatal("StoreBF succeeded for non-resident block")
	}
	if c.Stats().BFStoreFails == 0 {
		t.Fatal("store failure not counted")
	}
}

func TestBFCapacityPerSet(t *testing.T) {
	c := tiny(true, 1) // only one BF per set
	b0 := blockInSet(c, 0, 3, 0)
	b1 := blockInSet(c, 0, 3, 1)
	c.Insert(b0, true)
	c.Insert(b1, true)
	if !c.StoreBF(b0, isa.BF{Count: 1}) {
		t.Fatal("first BF store failed")
	}
	if c.StoreBF(b1, isa.BF{Count: 1}) {
		t.Fatal("second BF store exceeded capacity")
	}
}

func TestBFDroppedWithEvictedBlock(t *testing.T) {
	c := tiny(true, 21)
	b := blockInSet(c, 0, 0, 0)
	c.Insert(b, true)
	c.StoreBF(b, isa.BF{Count: 2})
	// Force b out (3 effective ways while pinned).
	for i := 1; i <= 3; i++ {
		c.Insert(blockInSet(c, 0, 0, i), true)
	}
	if c.Contains(b) {
		t.Fatal("b still resident")
	}
	if _, ok := c.LoadBF(b); ok {
		t.Fatal("BF survived its block's eviction")
	}
}

func TestNonDVStoreBFAlwaysFails(t *testing.T) {
	c := tiny(false, 21)
	b := blockInSet(c, 0, 0, 0)
	c.Insert(b, true)
	if c.StoreBF(b, isa.BF{Count: 1}) {
		t.Fatal("StoreBF succeeded with DV disabled")
	}
}

func TestBankMapping(t *testing.T) {
	c := tiny(false, 0)
	if c.BankOf(0) == c.BankOf(1) {
		t.Fatal("consecutive blocks map to the same bank")
	}
	// Default config sanity.
	d := New(DefaultConfig())
	if d.Config().Banks != 16 || d.AccessCycles() != 18 {
		t.Fatalf("default config wrong: %+v", d.Config())
	}
}

func TestBankDelay(t *testing.T) {
	c := New(Config{
		SizeBytes:         2 * 4 * 4 * isa.BlockBytes,
		Ways:              4,
		Banks:             2,
		AccessCycles:      18,
		BankServiceCycles: 8,
	})
	// Within one 64-cycle window, 8 accesses fill the bank's capacity; the
	// ninth queues.
	var d uint64
	for i := 0; i < 9; i++ {
		d = c.BankDelay(0, 100)
	}
	if d == 0 {
		t.Fatal("over-subscribed bank did not delay")
	}
	if c.QueuedCycles() == 0 {
		t.Fatal("queueing not counted")
	}
	// A different bank is independent.
	if c.BankDelay(1, 100) != 0 {
		t.Fatal("other bank delayed")
	}
	// A new window clears the occupancy.
	if c.BankDelay(0, 100+128) != 0 {
		t.Fatal("new window still congested")
	}
	// Disabled service modelling never delays.
	z := tiny(false, 0)
	for i := 0; i < 100; i++ {
		if z.BankDelay(0, 5) != 0 {
			t.Fatal("disabled bank model delayed")
		}
	}
}

func TestInsertResidentPromotes(t *testing.T) {
	c := tiny(false, 0)
	b0 := blockInSet(c, 0, 0, 0)
	c.Insert(b0, false)
	for i := 1; i < 4; i++ {
		c.Insert(blockInSet(c, 0, 0, i), false)
	}
	c.Insert(b0, true) // re-insert marks instruction and promotes
	c.Insert(blockInSet(c, 0, 0, 9), false)
	if !c.Contains(b0) {
		t.Fatal("re-inserted block evicted")
	}
	if c.InstBlocks() != 1 {
		t.Fatalf("InstBlocks = %d, want 1", c.InstBlocks())
	}
}
