package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// TraceMeta labels an exported trace.
type TraceMeta struct {
	Workload string
	Design   string
	// Cores is the simulated core count; events with Core in [0,Cores) get
	// per-core process tracks, machine-global events (Core < 0) land on an
	// extra "machine" process.
	Cores int
}

// Per-core thread (track) IDs in the exported trace.
const (
	trackFetch    = 1 // fetch-stall spans, one slice per coalesced stall run
	trackL1iFills = 2 // demand and prefetch fills, one slice per fill latency
	trackPrefetch = 3 // prefetch issues/drops and discontinuity triggers
)

// traceEvent is one Chrome trace_event record. Field order is fixed so the
// export is byte-deterministic (golden-tested).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto exports events as Chrome trace_event JSON loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Each simulated core is a
// process with fetch, L1i-fill, and prefetch tracks; one simulated cycle is
// rendered as one microsecond. Events must be in emission order (as returned
// by Tracer.Events).
func WritePerfetto(w io.Writer, events []Event, meta TraceMeta) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	put := func(ev traceEvent) error {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.Write(line)
		return nil
	}

	machinePid := meta.Cores
	for c := 0; c < meta.Cores; c++ {
		if err := put(metaEvent(c, 0, "process_name", fmt.Sprintf("core %d", c))); err != nil {
			return err
		}
		if err := put(metaEvent(c, trackFetch, "thread_name", "fetch")); err != nil {
			return err
		}
		if err := put(metaEvent(c, trackL1iFills, "thread_name", "l1i fills")); err != nil {
			return err
		}
		if err := put(metaEvent(c, trackPrefetch, "thread_name", "prefetch")); err != nil {
			return err
		}
	}
	if err := put(metaEvent(machinePid, 0, "process_name", "machine")); err != nil {
		return err
	}
	if err := put(metaEvent(machinePid, 1, "thread_name", "checkpoints")); err != nil {
		return err
	}

	for _, ev := range events {
		pid := int(ev.Core)
		if pid < 0 {
			pid = machinePid
		}
		var te traceEvent
		switch ev.Kind {
		case EvStall:
			te = traceEvent{Name: StallCause(ev.Arg).String(), Ph: "X",
				Ts: ev.Cycle, Dur: ev.Dur, Pid: pid, Tid: trackFetch}
		case EvDemandFill, EvPrefetchFill:
			start := ev.Cycle - min(ev.Dur, ev.Cycle)
			te = traceEvent{Name: ev.Kind.String(), Ph: "X", Ts: start,
				Dur: ev.Dur, Pid: pid, Tid: trackL1iFills,
				Args: map[string]any{"block": fmt.Sprintf("%#x", ev.Arg)}}
		case EvPrefetchIssue, EvPrefetchDrop, EvDiscontinuity:
			te = traceEvent{Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle,
				Pid: pid, Tid: trackPrefetch, S: "t",
				Args: map[string]any{"block": fmt.Sprintf("%#x", ev.Arg)}}
		case EvCheckpoint:
			te = traceEvent{Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle,
				Pid: machinePid, Tid: 1, S: "g",
				Args: map[string]any{"seq": ev.Arg}}
		default:
			continue
		}
		if err := put(te); err != nil {
			return err
		}
	}

	fmt.Fprintf(bw, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"1 simulated cycle = 1us\",\"design\":%q,\"workload\":%q}}\n",
		meta.Design, meta.Workload)
	return bw.Flush()
}

func metaEvent(pid, tid int, kind, name string) traceEvent {
	return traceEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

// WritePerfettoFile exports the trace to a file.
func WritePerfettoFile(path string, events []Event, meta TraceMeta) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating trace file: %w", err)
	}
	if err := WritePerfetto(f, events, meta); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: closing trace file: %w", err)
	}
	return nil
}
