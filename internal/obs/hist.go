package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket histogram of uint64 observations. Bucket i
// counts values v with bounds[i-1] < v <= bounds[i]; one implicit overflow
// bucket counts values above the last bound. Bounds are fixed at
// construction so Observe is a branch-light binary search with no
// allocation, cheap enough for per-event use on the simulator's hot paths.
type Histogram struct {
	name   string
	bounds []uint64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

// NewHistogram returns a histogram over the given strictly increasing
// upper-inclusive bucket bounds. It panics on an empty or non-increasing
// bound set — bounds are compiled into the build, not data.
func NewHistogram(name string, bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %d: %d <= %d",
				name, i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{name: name, bounds: b, counts: make([]uint64, len(b)+1)}
}

// ExpBounds returns n geometrically growing bounds starting at first; each
// bound is at least one larger than the previous, so degenerate factors
// still yield strictly increasing bounds.
func ExpBounds(first uint64, factor float64, n int) []uint64 {
	if first == 0 {
		first = 1
	}
	out := make([]uint64, 0, n)
	v := first
	for i := 0; i < n; i++ {
		out = append(out, v)
		next := uint64(float64(v) * factor)
		if next <= v {
			next = v + 1
		}
		v = next
	}
	return out
}

// LinearBounds returns n bounds at step, 2*step, ..., n*step.
func LinearBounds(step uint64, n int) []uint64 {
	if step == 0 {
		step = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = step * uint64(i+1)
	}
	return out
}

// Name returns the registration name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. Safe on a nil histogram (the disabled fast
// path costs one pointer test).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Merge folds other's observations into h, exactly as if every one of them
// had been Observed on h directly: counts, totals, and extrema all commute,
// so per-shard histograms fold into bit-identical snapshots regardless of
// how observations were partitioned across shards. The two histograms must
// share a bound set (merging across different bucketings is a bug, not a
// best-effort).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.n == 0 {
		return
	}
	if len(other.bounds) != len(h.bounds) {
		panic(fmt.Sprintf("obs: merging histogram %s (%d bounds) into %s (%d bounds)",
			other.name, len(other.bounds), h.name, len(h.bounds)))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			panic(fmt.Sprintf("obs: merging histogram %s into %s with mismatched bound %d",
				other.name, h.name, i))
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Reset zeroes the histogram (window boundary).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	clear(h.counts)
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Snapshot captures the histogram's state for folding into a run result.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Name:   h.name,
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		N:      h.n,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	return s
}

// HistSnapshot is an immutable, JSON-friendly copy of a histogram. Counts
// has one entry per bound plus the trailing overflow bucket.
type HistSnapshot struct {
	Name   string   `json:"name"`
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	N      uint64   `json:"n"`
	Sum    uint64   `json:"sum"`
	Min    uint64   `json:"min"`
	Max    uint64   `json:"max"`
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Quantile returns an upper estimate of the q-quantile (0 < q <= 1): the
// smallest bucket bound whose cumulative count reaches q, or Max for
// observations in the overflow bucket. Empty histograms return 0.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.N == 0 {
		return 0
	}
	target := uint64(q * float64(s.N))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// String renders a one-line summary: count, mean, p50/p90/p99 and max.
func (s HistSnapshot) String() string {
	if s.N == 0 {
		return fmt.Sprintf("%s: empty", s.Name)
	}
	return fmt.Sprintf("%s: n=%d mean=%.1f p50<=%d p90<=%d p99<=%d max=%d",
		s.Name, s.N, s.Mean(), s.Quantile(0.50), s.Quantile(0.90),
		s.Quantile(0.99), s.Max)
}

// Bars renders an ASCII bucket profile for terminal inspection.
func (s HistSnapshot) Bars(width int) string {
	if width <= 0 {
		width = 40
	}
	var peak uint64
	for _, c := range s.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range s.Counts {
		label := "+Inf"
		if i < len(s.Bounds) {
			label = fmt.Sprintf("%d", s.Bounds[i])
		}
		n := int(c * uint64(width) / peak)
		fmt.Fprintf(&b, "  <=%8s %8d %s\n", label, c, strings.Repeat("#", n))
	}
	return b.String()
}
