package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Span is one wall-clock slice on a named track, the service-plane analogue
// of the cycle-domain Event: Ts/Dur are microseconds from an arbitrary
// epoch, Track groups spans onto one row (one process in the Perfetto UI),
// Lane subdivides a track (one thread row). Args carry free-form
// annotations (trace IDs, digests, worker names).
type Span struct {
	Track string // process row, e.g. a cell key or worker ID
	Lane  string // thread row within the track, e.g. "attempt 1"
	Name  string // slice label, e.g. "execute" or "queue-wait"
	Ts    uint64 // start, microseconds from the trace epoch
	Dur   uint64 // duration in microseconds
	Args  map[string]any
}

// SpanTraceMeta labels an exported span trace.
type SpanTraceMeta struct {
	Name  string // trace title, e.g. the job ID
	Clock string // human description of the time base
}

// WriteSpanTrace exports spans as Chrome trace_event JSON loadable in
// Perfetto, reusing the cycle-trace exporter's record shape. Tracks and
// lanes get pid/tid numbers in order of first appearance, so the output is
// byte-deterministic for a fixed span order.
func WriteSpanTrace(w io.Writer, spans []Span, meta SpanTraceMeta) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	put := func(ev traceEvent) error {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.Write(line)
		return nil
	}

	type laneKey struct{ track, lane string }
	pids := map[string]int{}
	tids := map[laneKey]int{}
	nextTid := map[string]int{}
	for _, s := range spans {
		pid, ok := pids[s.Track]
		if !ok {
			pid = len(pids)
			pids[s.Track] = pid
			if err := put(metaEvent(pid, 0, "process_name", s.Track)); err != nil {
				return err
			}
		}
		lk := laneKey{s.Track, s.Lane}
		tid, ok := tids[lk]
		if !ok {
			nextTid[s.Track]++
			tid = nextTid[s.Track]
			tids[lk] = tid
			if err := put(metaEvent(pid, tid, "thread_name", s.Lane)); err != nil {
				return err
			}
		}
		ev := traceEvent{Name: s.Name, Ph: "X", Ts: s.Ts, Dur: s.Dur,
			Pid: pid, Tid: tid, Args: s.Args}
		if s.Dur == 0 {
			// Zero-width slices render as instants so they stay visible.
			ev.Ph, ev.S = "i", "t"
			ev.Dur = 0
		}
		if err := put(ev); err != nil {
			return err
		}
	}

	fmt.Fprintf(bw, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":%q,\"name\":%q}}\n",
		meta.Clock, meta.Name)
	return bw.Flush()
}
