// Package obs is the simulator's observability layer: low-overhead
// fixed-bucket histograms and counters collected into a registry
// (internal/obs.Registry), a bounded ring-buffer event tracer, and a
// Perfetto/Chrome trace_event JSON exporter. The simulated frontend and the
// simulator itself are profiled with the same substrate: stall attribution
// and prefetch timeliness for the machine model, sweep progress and journal
// lag for the harness.
//
// Everything here is optional and nil-safe: a component holds a possibly-nil
// *Tracer or *Histogram and pays one pointer test per event when
// observability is off (see the cycle-loop overhead benchmark in
// internal/sim/bench_test.go).
package obs

// StallCause is the top-down frontend stall taxonomy: every zero-delivery
// fetch cycle is charged to exactly one cause. The attribution is
// conservative by construction — internal/core charges one counter per idle
// cycle and sim.Audit checks that the causes plus delivering cycles sum to
// the window's total cycles.
type StallCause uint8

const (
	// StallNone marks a delivering (non-stalled) cycle.
	StallNone StallCause = iota
	// StallICache: fetch is waiting on an outstanding L1i demand miss.
	StallICache
	// StallFTQ: the design's fetch target queue has not delivered the
	// block (empty-FTQ stall of fetch-directed frontends).
	StallFTQ
	// StallBTB: redirect bubble from a BTB miss (unknown branch/target).
	StallBTB
	// StallMispred: redirect bubble from a wrong-path squash (direction or
	// target misprediction resolved in the backend).
	StallMispred
	// StallBackend: the ROB is full; fetch is backpressured.
	StallBackend
	// StallStartup: pipeline-fill cycles before the first delivery.
	StallStartup

	// NumStallCauses bounds the taxonomy (array sizing).
	NumStallCauses
)

var stallNames = [NumStallCauses]string{
	"delivering", "icache-miss", "ftq-empty", "btb-miss", "wrong-path-squash",
	"backend-backpressure", "startup",
}

// String names the cause for reports and trace tracks.
func (c StallCause) String() string {
	if int(c) < len(stallNames) {
		return stallNames[c]
	}
	return "unknown"
}

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvStall is a coalesced run of fetch-stall cycles; Arg is the
	// StallCause, Dur the run length.
	EvStall EventKind = iota
	// EvDemandFill is an L1i fill of a demand miss; Arg is the block ID,
	// Dur the miss latency.
	EvDemandFill
	// EvPrefetchFill is an L1i (or prefetch-buffer) fill of a prefetched
	// block; Arg is the block ID, Dur the issue-to-fill latency.
	EvPrefetchFill
	// EvPrefetchIssue marks a prefetch leaving for the lower hierarchy;
	// Arg is the block ID.
	EvPrefetchIssue
	// EvPrefetchDrop marks a prefetch rejected at issue for lack of an
	// MSHR; Arg is the block ID.
	EvPrefetchDrop
	// EvDiscontinuity marks a discontinuity-replay trigger chasing a
	// non-sequential target; Arg is the target block ID.
	EvDiscontinuity
	// EvCheckpoint marks a full-machine snapshot; Arg is the snapshot
	// sequence number within the run.
	EvCheckpoint

	numEventKinds
)

var eventNames = [numEventKinds]string{
	"stall", "demand fill", "prefetch fill", "prefetch issue",
	"prefetch drop", "discontinuity", "checkpoint",
}

// String names the kind for exports.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one trace record. Cycle is the event's start (for spans) or
// instant; Dur is the span length in cycles (0 for instants); Core is the
// emitting tile (-1 for machine-global events); Arg is kind-specific.
type Event struct {
	Cycle uint64
	Dur   uint64
	Arg   uint64
	Core  int16
	Kind  EventKind
}

// Tracer is a bounded ring buffer of events. When the buffer is full the
// oldest events are overwritten, so a trace always holds the tail of the
// run. All methods are safe on a nil receiver — a nil *Tracer is the
// disabled tracer, and Emit's nil test is the whole fast path.
type Tracer struct {
	buf   []Event
	next  int
	total uint64
}

// NewTracer returns a tracer holding up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. It is a no-op on a nil tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// Total returns how many events were emitted over the tracer's lifetime,
// including overwritten ones.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many events were overwritten by newer ones.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Reset discards buffered events and the lifetime counters (used at the
// warm-up/measurement window boundary, so the exported trace covers the
// measurement window only).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.next = 0
	t.total = 0
}
