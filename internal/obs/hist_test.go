package obs

import (
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("b", []uint64{10, 20, 30})
	// Buckets are upper-inclusive: bucket i counts bounds[i-1] < v <= bounds[i].
	for _, v := range []uint64{0, 5, 10} {
		h.Observe(v) // bucket 0
	}
	h.Observe(11) // bucket 1
	h.Observe(20) // bucket 1
	h.Observe(30) // bucket 2
	h.Observe(31) // overflow
	h.Observe(1 << 40)

	s := h.Snapshot()
	want := []uint64{3, 2, 1, 2}
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets (incl. overflow), want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Min != 0 || s.Max != 1<<40 {
		t.Errorf("min/max = %d/%d, want 0/%d", s.Min, s.Max, uint64(1)<<40)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", []uint64{1, 2, 4, 8})
	for v := uint64(1); v <= 8; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 8 observations: one each in <=1 and <=2, two in <=4, four in <=8.
	if got := s.Quantile(0.50); got != 4 {
		t.Errorf("p50 = %d, want 4", got)
	}
	if got := s.Quantile(1.0); got != 8 {
		t.Errorf("p100 = %d, want 8", got)
	}
	if got := s.Quantile(0.125); got != 1 {
		t.Errorf("p12.5 = %d, want 1", got)
	}
	// Overflow observations report Max, not a bound.
	h.Observe(100)
	if got := h.Snapshot().Quantile(1.0); got != 100 {
		t.Errorf("overflow quantile = %d, want 100", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

func TestHistogramMeanAndString(t *testing.T) {
	h := NewHistogram("lat", []uint64{10, 100})
	h.Observe(10)
	h.Observe(30)
	s := h.Snapshot()
	if s.Mean() != 20 {
		t.Errorf("mean = %v, want 20", s.Mean())
	}
	if str := s.String(); !strings.Contains(str, "lat: n=2 mean=20.0") {
		t.Errorf("String() = %q", str)
	}
	if str := (HistSnapshot{Name: "x"}).String(); str != "x: empty" {
		t.Errorf("empty String() = %q", str)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram("r", []uint64{4})
	h.Observe(3)
	h.Observe(99)
	h.Reset()
	s := h.Snapshot()
	if s.N != 0 || s.Sum != 0 || s.Max != 0 {
		t.Errorf("after Reset: n=%d sum=%d max=%d, want zeros", s.N, s.Sum, s.Max)
	}
	for i, c := range s.Counts {
		if c != 0 {
			t.Errorf("bucket %d = %d after Reset", i, c)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(7) // must not panic
	h.Reset()
	if h.Count() != 0 {
		t.Error("nil Count != 0")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]uint64{
		"empty":          nil,
		"non-increasing": {4, 4},
		"decreasing":     {8, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds: no panic", name)
				}
			}()
			NewHistogram("bad", bounds)
		}()
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(8, 1.5, 6)
	if len(b) != 6 || b[0] != 8 {
		t.Fatalf("ExpBounds = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("not increasing at %d: %v", i, b)
		}
	}
	// Degenerate factor and zero first value still yield valid bounds.
	for i, v := range ExpBounds(0, 1.0, 4) {
		if v != uint64(i+1) {
			t.Fatalf("degenerate ExpBounds = %v", ExpBounds(0, 1.0, 4))
		}
	}
}

func TestLinearBounds(t *testing.T) {
	b := LinearBounds(8, 3)
	if len(b) != 3 || b[0] != 8 || b[1] != 16 || b[2] != 24 {
		t.Fatalf("LinearBounds = %v", b)
	}
	if z := LinearBounds(0, 2); z[0] != 1 || z[1] != 2 {
		t.Fatalf("zero-step LinearBounds = %v", z)
	}
}
