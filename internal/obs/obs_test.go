package obs

import (
	"testing"
)

func TestTracerRingRotation(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(1); i <= 6; i++ {
		tr.Emit(Event{Cycle: i, Kind: EvStall})
	}
	if got := tr.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	// Oldest first: emissions 3..6 survive.
	for i, ev := range evs {
		if want := uint64(i + 3); ev.Cycle != want {
			t.Errorf("Events[%d].Cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
}

func TestTracerUnderfilled(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Cycle: 1})
	tr.Emit(Event{Cycle: 2})
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d before wrap", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Errorf("Events = %v", evs)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(Event{Cycle: 1})
	tr.Emit(Event{Cycle: 2})
	tr.Emit(Event{Cycle: 3})
	tr.Reset()
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Errorf("after Reset: total=%d dropped=%d events=%v",
			tr.Total(), tr.Dropped(), tr.Events())
	}
	tr.Emit(Event{Cycle: 9})
	if evs := tr.Events(); len(evs) != 1 || evs[0].Cycle != 9 {
		t.Errorf("post-Reset Events = %v", evs)
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	if tr := NewTracer(0); tr != nil {
		t.Error("NewTracer(0) != nil")
	}
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer Enabled")
	}
	tr.Emit(Event{Cycle: 1}) // must not panic
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer not empty")
	}
	tr.Reset()
}

func TestStallCauseNames(t *testing.T) {
	seen := map[string]bool{}
	for c := StallCause(0); c < NumStallCauses; c++ {
		n := c.String()
		if n == "" || n == "unknown" {
			t.Errorf("cause %d has no name", c)
		}
		if seen[n] {
			t.Errorf("duplicate cause name %q", n)
		}
		seen[n] = true
	}
	if NumStallCauses.String() != "unknown" {
		t.Error("out-of-range cause should be unknown")
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if n := k.String(); n == "" || n == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
