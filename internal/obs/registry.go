package obs

import "dnc/internal/stats"

// Config enables the observability layer for one simulation run.
type Config struct {
	// SampleEvery is the occupancy-gauge sampling cadence in cycles
	// (0 = DefaultSampleEvery).
	SampleEvery uint64
	// TraceEvents bounds the event tracer's ring buffer; 0 disables
	// tracing while keeping histograms and gauges on.
	TraceEvents int
}

// DefaultSampleEvery is the gauge sampling cadence when Config.SampleEvery
// is zero: fine enough to resolve per-window occupancy shifts, coarse enough
// to stay invisible next to the cycle loop.
const DefaultSampleEvery = 256

// Registry is a named collection of histograms plus ad-hoc counters,
// snapshotted in registration order at the end of a run. It is not safe for
// concurrent use; the simulator's tick loop is single-threaded per run.
type Registry struct {
	order    []string
	hists    map[string]*Histogram
	counters *stats.Set
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram), counters: stats.NewSet()}
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(name, bounds)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// Counter returns the named event counter, creating it if needed.
func (r *Registry) Counter(name string) *stats.Counter { return r.counters.Counter(name) }

// Reset zeroes every histogram and counter (warm-up/measurement boundary).
func (r *Registry) Reset() {
	for _, n := range r.order {
		r.hists[n].Reset()
	}
	r.counters.Reset()
}

// Snapshot captures every histogram and counter in registration order.
func (r *Registry) Snapshot() ([]HistSnapshot, []stats.CounterValue) {
	hs := make([]HistSnapshot, 0, len(r.order))
	for _, n := range r.order {
		hs = append(hs, r.hists[n].Snapshot())
	}
	return hs, r.counters.Snapshot()
}

// RunObs is a run's observability snapshot, folded into sim.Result. Trace
// events are kept in memory for in-process export (dncsim -trace-out) but
// excluded from JSON: a journaled sweep should not carry megabytes of trace
// per cell.
type RunObs struct {
	Hists    []HistSnapshot       `json:"hists,omitempty"`
	Counters []stats.CounterValue `json:"counters,omitempty"`
	// TraceTotal and TraceDropped summarize the tracer: total events
	// emitted over the measurement window and how many the ring discarded.
	TraceTotal   uint64  `json:"trace_total,omitempty"`
	TraceDropped uint64  `json:"trace_dropped,omitempty"`
	Events       []Event `json:"-"`
}

// Hist returns the named histogram snapshot.
func (r *RunObs) Hist(name string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	for _, h := range r.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnapshot{}, false
}
