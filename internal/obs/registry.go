package obs

import "dnc/internal/stats"

// Config enables the observability layer for one simulation run.
type Config struct {
	// SampleEvery is the occupancy-gauge sampling cadence in cycles
	// (0 = DefaultSampleEvery).
	SampleEvery uint64
	// TraceEvents bounds the event tracer's ring buffer; 0 disables
	// tracing while keeping histograms and gauges on.
	TraceEvents int
	// Series additionally retains the sampled gauges as time-series
	// (IPC-over-time plus the occupancy gauges), folded into
	// RunObs.Series. Off by default: a series costs ~16 bytes per sample
	// point in memory and rides the JSON wire form of the result, so only
	// store-writing runs (dncbench -store-out) should pay for it.
	Series bool
}

// DefaultSampleEvery is the gauge sampling cadence when Config.SampleEvery
// is zero: fine enough to resolve per-window occupancy shifts, coarse enough
// to stay invisible next to the cycle loop.
const DefaultSampleEvery = 256

// Registry is a named collection of histograms plus ad-hoc counters,
// snapshotted in registration order at the end of a run. It is not safe for
// concurrent use; the simulator's tick loop is single-threaded per run.
type Registry struct {
	order    []string
	hists    map[string]*Histogram
	counters *stats.Set

	seriesOrder []string
	series      map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		counters: stats.NewSet(),
		series:   make(map[string]*Series),
	}
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(name, bounds)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// Counter returns the named event counter, creating it if needed.
func (r *Registry) Counter(name string) *stats.Counter { return r.counters.Counter(name) }

// Series returns the named time-series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	if s, ok := r.series[name]; ok {
		return s
	}
	s := NewSeries(name)
	r.series[name] = s
	r.seriesOrder = append(r.seriesOrder, name)
	return s
}

// Reset zeroes every histogram, counter, and series (warm-up/measurement
// boundary).
func (r *Registry) Reset() {
	for _, n := range r.order {
		r.hists[n].Reset()
	}
	for _, n := range r.seriesOrder {
		r.series[n].Reset()
	}
	r.counters.Reset()
}

// Snapshot captures every histogram and counter in registration order.
func (r *Registry) Snapshot() ([]HistSnapshot, []stats.CounterValue) {
	hs := make([]HistSnapshot, 0, len(r.order))
	for _, n := range r.order {
		hs = append(hs, r.hists[n].Snapshot())
	}
	return hs, r.counters.Snapshot()
}

// SeriesSnapshots captures every registered time-series in registration
// order (nil when none are registered, so RunObs JSON stays unchanged for
// runs without series capture).
func (r *Registry) SeriesSnapshots() []SeriesSnapshot {
	if len(r.seriesOrder) == 0 {
		return nil
	}
	out := make([]SeriesSnapshot, 0, len(r.seriesOrder))
	for _, n := range r.seriesOrder {
		out = append(out, r.series[n].Snapshot())
	}
	return out
}

// RunObs is a run's observability snapshot, folded into sim.Result. Trace
// events are kept in memory for in-process export (dncsim -trace-out) but
// excluded from JSON: a journaled sweep should not carry megabytes of trace
// per cell.
type RunObs struct {
	Hists    []HistSnapshot       `json:"hists,omitempty"`
	Counters []stats.CounterValue `json:"counters,omitempty"`
	// Series holds the sampled gauge time-series when Config.Series was
	// set (IPC-over-time and per-sample occupancy means).
	Series []SeriesSnapshot `json:"series,omitempty"`
	// TraceTotal and TraceDropped summarize the tracer: total events
	// emitted over the measurement window and how many the ring discarded.
	TraceTotal   uint64  `json:"trace_total,omitempty"`
	TraceDropped uint64  `json:"trace_dropped,omitempty"`
	Events       []Event `json:"-"`
}

// Hist returns the named histogram snapshot.
func (r *RunObs) Hist(name string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	for _, h := range r.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnapshot{}, false
}
