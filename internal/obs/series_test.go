package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSeriesObserveSnapshot(t *testing.T) {
	s := NewSeries("series.test")
	if s.Name() != "series.test" {
		t.Fatalf("Name = %q", s.Name())
	}
	for i := 0; i < 5; i++ {
		s.Observe(uint64(i*256), float64(i)*0.5)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	snap := s.Snapshot()
	want := SeriesSnapshot{
		Name:   "series.test",
		Cycles: []uint64{0, 256, 512, 768, 1024},
		Values: []float64{0, 0.5, 1, 1.5, 2},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot = %+v, want %+v", snap, want)
	}
	// Snapshot is a copy: mutating the series must not alias into it.
	s.Observe(2048, 9)
	if len(snap.Cycles) != 5 || snap.Values[0] != 0 {
		t.Fatal("snapshot aliases live series storage")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	if got := s.Snapshot(); len(got.Cycles) != 0 || len(got.Values) != 0 {
		t.Fatalf("Snapshot after Reset = %+v", got)
	}
}

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	s.Observe(1, 2) // must not panic
	s.Reset()
	if s.Len() != 0 || s.Name() != "" {
		t.Fatal("nil series not inert")
	}
}

func TestRegistrySeriesOrderAndReset(t *testing.T) {
	r := NewRegistry()
	if got := r.SeriesSnapshots(); got != nil {
		t.Fatalf("SeriesSnapshots on empty registry = %v, want nil", got)
	}
	b := r.Series("b")
	a := r.Series("a")
	if r.Series("b") != b {
		t.Fatal("re-registration returned a new series")
	}
	b.Observe(10, 1)
	a.Observe(10, 2)
	snaps := r.SeriesSnapshots()
	if len(snaps) != 2 || snaps[0].Name != "b" || snaps[1].Name != "a" {
		t.Fatalf("snapshots not in registration order: %+v", snaps)
	}
	r.Reset()
	for _, s := range r.SeriesSnapshots() {
		if len(s.Cycles) != 0 {
			t.Fatalf("series %s survived Reset", s.Name)
		}
	}
}

// TestRunObsSeriesJSONRoundTrip: series ride the journal wire form, so the
// JSON round trip must be lossless (bit-exact float64s included).
func TestRunObsSeriesJSONRoundTrip(t *testing.T) {
	in := RunObs{Series: []SeriesSnapshot{{
		Name:   "series.ipc",
		Cycles: []uint64{256, 512, 768},
		Values: []float64{0.25, 1.0 / 3.0, 0.999999999999},
	}}}
	raw, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out RunObs
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Series, out.Series) {
		t.Fatalf("series round trip: got %+v, want %+v", out.Series, in.Series)
	}
	// Runs without series capture keep the pre-series wire form.
	raw, err = json.Marshal(&RunObs{})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "{}" {
		t.Fatalf("empty RunObs JSON = %s, want {}", raw)
	}
}
