package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the perfetto golden file")

// goldenEvents is a small deterministic trace exercising every event kind,
// per-core and machine-global placement, and the fill back-dating path
// (Dur > Cycle clamps the start at zero).
func goldenEvents() []Event {
	return []Event{
		{Cycle: 0, Dur: 12, Arg: uint64(StallStartup), Core: 0, Kind: EvStall},
		{Cycle: 5, Dur: 40, Arg: 0x80, Core: 0, Kind: EvDemandFill},
		{Cycle: 12, Arg: 0x81, Core: 0, Kind: EvPrefetchIssue},
		{Cycle: 14, Arg: 0x82, Core: 1, Kind: EvPrefetchDrop},
		{Cycle: 20, Dur: 6, Arg: uint64(StallICache), Core: 1, Kind: EvStall},
		{Cycle: 30, Dur: 18, Arg: 0x81, Core: 0, Kind: EvPrefetchFill},
		{Cycle: 33, Arg: 0x200, Core: 1, Kind: EvDiscontinuity},
		{Cycle: 40, Arg: 1, Core: -1, Kind: EvCheckpoint},
	}
}

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WritePerfetto(&buf, goldenEvents(), TraceMeta{
		Workload: "golden-wl", Design: "golden-d", Cores: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export differs from %s (regenerate with -update if intended)\ngot:\n%s",
			golden, buf.String())
	}
}

func TestWritePerfettoIsValidTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenEvents(), TraceMeta{Workload: "w", Design: "d", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Pid < 0 || ev.Pid > 2 {
			t.Errorf("event %q on pid %d, want 0..2", ev.Name, ev.Pid)
		}
	}
	// 2 stall spans + 2 fills; prefetch issue/drop, discontinuity, checkpoint.
	if spans != 4 || instants != 4 {
		t.Errorf("spans=%d instants=%d, want 4 and 4", spans, instants)
	}
	// 4 metadata records per core plus 2 for the machine process.
	if meta != 10 {
		t.Errorf("meta=%d, want 10", meta)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
}

func TestWritePerfettoBackdatesFillStart(t *testing.T) {
	// A fill whose latency exceeds its completion cycle (possible for fills
	// issued during warm-up that complete right after the window reset) must
	// clamp its start at zero, not underflow.
	var buf bytes.Buffer
	evs := []Event{{Cycle: 10, Dur: 50, Arg: 1, Core: 0, Kind: EvDemandFill}}
	if err := WritePerfetto(&buf, evs, TraceMeta{Cores: 1}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			Ts uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Ts != 0 {
			t.Errorf("backdated fill starts at ts=%d, want 0", ev.Ts)
		}
	}
}

func TestWritePerfettoFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WritePerfettoFile(path, goldenEvents(), TraceMeta{Cores: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Error("file is not valid JSON")
	}
}
