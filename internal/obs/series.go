package obs

// Series is an appending time-series of sampled gauge values: one
// (cycle, value) point per observation, in observation order. It is the
// raw-material feed for the columnar result store (internal/resultstore),
// which compresses the cycles with delta-of-delta coding and the values
// with Gorilla XOR coding — so a Series should be sampled on a regular
// cadence (the deltas then collapse to near-zero) and hold values that
// drift rather than jump (occupancies, rates).
//
// Like every collector in this package it is nil-safe: a nil *Series is
// the disabled series and Observe on it is one pointer test.
type Series struct {
	name   string
	cycles []uint64
	values []float64
}

// NewSeries returns an empty series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the registration name.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Observe appends one sampled point. Safe on a nil series.
func (s *Series) Observe(cycle uint64, v float64) {
	if s == nil {
		return
	}
	s.cycles = append(s.cycles, cycle)
	s.values = append(s.values, v)
}

// Len returns the number of recorded points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.cycles)
}

// Reset discards recorded points (warm-up/measurement window boundary).
func (s *Series) Reset() {
	if s == nil {
		return
	}
	s.cycles = s.cycles[:0]
	s.values = s.values[:0]
}

// Snapshot captures the series for folding into a run result.
func (s *Series) Snapshot() SeriesSnapshot {
	return SeriesSnapshot{
		Name:   s.name,
		Cycles: append([]uint64(nil), s.cycles...),
		Values: append([]float64(nil), s.values...),
	}
}

// SeriesSnapshot is an immutable, JSON-friendly copy of a sampled
// time-series. Cycles and Values are parallel; both may be empty for a run
// that never reached a sample point.
type SeriesSnapshot struct {
	Name   string    `json:"name"`
	Cycles []uint64  `json:"cycles,omitempty"`
	Values []float64 `json:"values,omitempty"`
}
