package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteSpanTrace(t *testing.T) {
	spans := []Span{
		{Track: "cell a", Lane: "phases", Name: "queue-wait", Ts: 0, Dur: 100},
		{Track: "cell a", Lane: "phases", Name: "execute", Ts: 100, Dur: 300},
		{Track: "cell a", Lane: "attempts", Name: "attempt 1", Ts: 100, Dur: 300,
			Args: map[string]any{"worker": "w000001"}},
		{Track: "cell b", Lane: "phases", Name: "cached", Ts: 50, Dur: 0},
	}
	var b strings.Builder
	if err := WriteSpanTrace(&b, spans, SpanTraceMeta{Name: "job-1", Clock: "us"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.OtherData["name"] != "job-1" {
		t.Fatalf("otherData %+v", doc.OtherData)
	}
	// Track/lane metadata: 2 processes, 3 threads total.
	var procs, threads int
	pidByName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "process_name":
			procs++
			pidByName[ev.Args["name"].(string)] = ev.Pid
		case "thread_name":
			threads++
		}
	}
	if procs != 2 || threads != 3 {
		t.Fatalf("procs=%d threads=%d, want 2/3", procs, threads)
	}
	if pidByName["cell a"] == pidByName["cell b"] {
		t.Fatal("tracks share a pid")
	}
	// Zero-duration spans render as instants; others as complete slices.
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "cached":
			if ev.Ph != "i" {
				t.Fatalf("zero-dur span ph=%q, want i", ev.Ph)
			}
		case "execute", "queue-wait", "attempt 1":
			if ev.Ph != "X" {
				t.Fatalf("span %s ph=%q, want X", ev.Name, ev.Ph)
			}
		}
	}
	// Deterministic: same input, same bytes.
	var b2 strings.Builder
	WriteSpanTrace(&b2, spans, SpanTraceMeta{Name: "job-1", Clock: "us"})
	if b.String() != b2.String() {
		t.Fatal("span trace export not deterministic")
	}
}
