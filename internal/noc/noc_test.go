package noc

import "testing"

func TestHops(t *testing.T) {
	m := New(DefaultConfig())
	cases := []struct {
		src, dst Tile
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // one row down
		{0, 15, 6}, // 3 east + 3 south
		{5, 10, 2},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestZeroLoadLatency(t *testing.T) {
	m := New(DefaultConfig())
	// 1-flit control packet over 3 hops: 3 hops * 3 cycles + 0 tail.
	got := m.Send(0, 3, 1, 100)
	if got != 100+9 {
		t.Errorf("3-hop 1-flit delivery at %d, want %d", got, 109)
	}
	m.Reset()
	// 5-flit data response over 1 hop: 3 + 4 tail cycles.
	got = m.Send(0, 1, 5, 0)
	if got != 3+4 {
		t.Errorf("1-hop 5-flit delivery at %d, want 7", got)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.Send(2, 2, 5, 10); got != 11 {
		t.Errorf("local delivery at %d, want 11", got)
	}
	if m.Flits() != 0 {
		t.Errorf("local delivery counted link flits: %d", m.Flits())
	}
}

func TestContention(t *testing.T) {
	m := New(DefaultConfig())
	// Light load within a window incurs no delay.
	a := m.Send(0, 1, 5, 0)
	b := m.Send(0, 1, 5, 0)
	if b != a {
		t.Errorf("lightly loaded link delayed a packet: a=%d b=%d", a, b)
	}
	// Over-subscribing the 64-flit window delays later packets.
	var last uint64
	for i := 0; i < 20; i++ {
		last = m.Send(0, 1, 5, 0)
	}
	if last <= a {
		t.Errorf("over-subscribed link did not delay: first=%d last=%d", a, last)
	}
	if m.QueuedCycles() == 0 {
		t.Error("no queueing recorded under over-subscription")
	}
	// A new window clears the congestion.
	fresh := m.Send(0, 1, 5, 1<<20)
	if fresh != 1<<20+7 {
		t.Errorf("new window still congested: %d", fresh)
	}
}

func TestDisjointPathsDoNotInterfere(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Send(0, 1, 5, 0)
	b := m.Send(4, 5, 5, 0) // different row, disjoint links
	if a != b {
		t.Errorf("disjoint paths interfered: a=%d b=%d", a, b)
	}
}

func TestFlitsFor(t *testing.T) {
	m := New(DefaultConfig())
	if m.FlitsFor(0) != 1 {
		t.Errorf("control packet flits = %d, want 1", m.FlitsFor(0))
	}
	if m.FlitsFor(64) != 5 {
		t.Errorf("data packet flits = %d, want 5", m.FlitsFor(64))
	}
}

func TestStatsAndReset(t *testing.T) {
	m := New(DefaultConfig())
	m.Send(0, 15, 5, 0)
	if m.Packets() != 1 || m.Flits() != 30 { // 6 hops * 5 flits
		t.Errorf("packets=%d flits=%d", m.Packets(), m.Flits())
	}
	m.Reset()
	if m.Packets() != 0 || m.Flits() != 0 || m.QueuedCycles() != 0 {
		t.Error("reset incomplete")
	}
	// After reset, zero-load latency is restored.
	if got := m.Send(0, 1, 1, 0); got != 3 {
		t.Errorf("post-reset latency %d, want 3", got)
	}
}
