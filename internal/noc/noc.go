// Package noc models the on-chip interconnect: a 2D mesh of tiles with XY
// dimension-order routing, a 2-stage router pipeline plus single-cycle link
// traversal per hop (3 cycles/hop at zero load), and per-link serialization
// that produces queueing delay under load. Useless prefetches raising NoC
// traffic — and with it the average LLC access latency (Figure 5 of the
// paper) — emerge from this contention model.
package noc

import (
	"fmt"

	"dnc/internal/obs"
)

// Tile identifies a mesh node (core + LLC slice).
type Tile int

// Config describes the mesh.
type Config struct {
	Width, Height int
	// HopCycles is the zero-load latency per hop (router pipeline + link).
	HopCycles uint64
	// FlitBytes is the link width; a 64-byte data response is
	// 1 + 64/FlitBytes flits.
	FlitBytes int
}

// DefaultConfig is the paper's 4x4 mesh with a 2-stage speculative router
// pipeline and 1-cycle link traversal.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, HopCycles: 3, FlitBytes: 16}
}

// linkWindow tracks a directed link's utilization over a fixed cycle
// window. Requests and responses are injected out of time order (a response
// is booked at its future departure time), so strict busy-until
// serialization would make early packets queue behind far-future
// reservations; windowed bandwidth accounting instead delays packets only
// when a window is over-subscribed (more flits than cycles).
type linkWindow struct {
	window uint64
	flits  uint64
}

// windowShift sets the contention window to 64 cycles.
const windowShift = 6

// Mesh is the interconnect state. It is not safe for concurrent use; the
// simulator serializes traffic injection.
type Mesh struct {
	cfg Config
	// links is indexed by [from][direction].
	links [][]linkWindow

	// Stats.
	flits   uint64
	packets uint64
	queued  uint64 // total cycles of over-subscription delay

	// lat, when set, observes each packet's injection-to-delivery latency
	// (hops, serialization, and queueing included).
	lat *obs.Histogram
}

// Link directions out of a tile.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// New returns an idle mesh.
func New(cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("noc: bad mesh %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.HopCycles == 0 {
		cfg.HopCycles = 3
	}
	if cfg.FlitBytes == 0 {
		cfg.FlitBytes = 16
	}
	n := cfg.Width * cfg.Height
	links := make([][]linkWindow, n)
	for i := range links {
		links[i] = make([]linkWindow, numDirs)
	}
	return &Mesh{cfg: cfg, links: links}
}

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.cfg.Width * m.cfg.Height }

// FlitsFor returns the flit count of a packet with the given payload bytes
// (one header flit plus payload flits).
func (m *Mesh) FlitsFor(payloadBytes int) int {
	return 1 + (payloadBytes+m.cfg.FlitBytes-1)/m.cfg.FlitBytes
}

func (m *Mesh) xy(t Tile) (int, int) {
	return int(t) % m.cfg.Width, int(t) / m.cfg.Width
}

// Hops returns the XY-route hop count between two tiles.
func (m *Mesh) Hops(src, dst Tile) int {
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	return abs(dx-sx) + abs(dy-sy)
}

// Send injects a packet of flits at cycle and returns the delivery cycle at
// dst. The head flit pays the router pipeline at each hop; each traversed
// link accounts the packet's flits against its window capacity, and the
// packet is delayed by any over-subscription it finds (queueing under
// load).
func (m *Mesh) Send(src, dst Tile, flits int, cycle uint64) uint64 {
	m.packets++
	if src == dst {
		// Local slice: no network traversal, a single-cycle forward.
		m.lat.Observe(1)
		return cycle + 1
	}
	x, y := m.xy(src)
	dx, dy := m.xy(dst)
	t := cycle
	for x != dx || y != dy {
		tile := Tile(y*m.cfg.Width + x)
		var dir int
		switch {
		case x < dx:
			dir, x = dirEast, x+1
		case x > dx:
			dir, x = dirWest, x-1
		case y < dy:
			dir, y = dirSouth, y+1
		default:
			dir, y = dirNorth, y-1
		}
		lw := &m.links[tile][dir]
		if w := t >> windowShift; w != lw.window {
			lw.window = w
			lw.flits = 0
		}
		lw.flits += uint64(flits)
		m.flits += uint64(flits)
		var delay uint64
		if cap := uint64(1) << windowShift; lw.flits > cap {
			delay = lw.flits - cap
			m.queued += delay
		}
		t += m.cfg.HopCycles + delay
	}
	// Tail flits of the packet arrive behind the head.
	t += uint64(flits) - 1
	m.lat.Observe(t - cycle)
	return t
}

// SetObs attaches a packet-latency histogram (nil detaches).
func (m *Mesh) SetObs(lat *obs.Histogram) { m.lat = lat }

// Packets returns the number of packets injected.
func (m *Mesh) Packets() uint64 { return m.packets }

// Flits returns the total link-flit traversals.
func (m *Mesh) Flits() uint64 { return m.flits }

// QueuedCycles returns the cumulative cycles packets waited on busy links; a
// direct read on contention.
func (m *Mesh) QueuedCycles() uint64 { return m.queued }

// ResetStats zeroes the statistics, leaving link occupancy intact (used at
// the warm-up/measurement boundary).
func (m *Mesh) ResetStats() { m.flits, m.packets, m.queued = 0, 0, 0 }

// Reset clears link state and statistics.
func (m *Mesh) Reset() {
	for i := range m.links {
		for d := range m.links[i] {
			m.links[i][d] = linkWindow{}
		}
	}
	m.flits, m.packets, m.queued = 0, 0, 0
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
