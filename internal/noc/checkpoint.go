package noc

import (
	"fmt"

	"dnc/internal/checkpoint"
)

// Snapshot serialises the mesh: every directed link's contention window and
// the traffic counters.
func (m *Mesh) Snapshot(e *checkpoint.Encoder) {
	e.Begin("noc")
	e.Int(m.cfg.Width)
	e.Int(m.cfg.Height)
	e.U64(m.flits)
	e.U64(m.packets)
	e.U64(m.queued)
	for i := range m.links {
		for d := range m.links[i] {
			e.U64(m.links[i][d].window)
			e.U64(m.links[i][d].flits)
		}
	}
	e.End()
}

// Restore loads state written by Snapshot. Mesh dimensions must match.
func (m *Mesh) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("noc"); err != nil {
		return err
	}
	w, h := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if w != m.cfg.Width || h != m.cfg.Height {
		return fmt.Errorf("%w: mesh %dx%d in snapshot, machine has %dx%d",
			checkpoint.ErrCorrupt, w, h, m.cfg.Width, m.cfg.Height)
	}
	m.flits = d.U64()
	m.packets = d.U64()
	m.queued = d.U64()
	for i := range m.links {
		for dir := range m.links[i] {
			m.links[i][dir].window = d.U64()
			m.links[i][dir].flits = d.U64()
		}
	}
	return d.End()
}

// Audit checks the mesh's structural invariants. The windowed bandwidth
// model books traffic analytically (responses land on future windows), so
// flit-level conservation is not observable; what must hold is that the
// geometry is intact and the counters are consistent: traffic on any link,
// or a nonzero flit total, implies injected packets.
//
// Each violation is returned as its own error.
func (m *Mesh) Audit() []error {
	var errs []error
	if got, want := len(m.links), m.cfg.Width*m.cfg.Height; got != want {
		errs = append(errs, fmt.Errorf("noc: %d link rows for a %dx%d mesh, want %d",
			got, m.cfg.Width, m.cfg.Height, want))
		return errs
	}
	var linkFlits uint64
	for i := range m.links {
		if len(m.links[i]) != numDirs {
			errs = append(errs, fmt.Errorf("noc: tile %d has %d link directions, want %d",
				i, len(m.links[i]), numDirs))
			continue
		}
		for dir := range m.links[i] {
			linkFlits += m.links[i][dir].flits
		}
	}
	if m.packets == 0 && m.flits != 0 {
		errs = append(errs, fmt.Errorf("noc: %d flits traversed with zero packets injected", m.flits))
	}
	if linkFlits > 0 && m.packets == 0 {
		errs = append(errs, fmt.Errorf("noc: link windows hold %d flits with zero packets injected", linkFlits))
	}
	return errs
}
