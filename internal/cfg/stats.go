package cfg

import (
	"fmt"

	"dnc/internal/isa"
)

// StaticStats summarize a generated program's structure; the workload
// calibration (internal/workloads) and the documentation use them to sanity
// check that presets look like server binaries.
type StaticStats struct {
	Functions    int
	BasicBlocks  int
	Instructions int
	CodeBytes    int

	// AvgBlockInsts is the mean basic-block length in instructions.
	AvgBlockInsts float64

	// Terminator mix over all basic blocks.
	CondFrac, JumpFrac, CallFrac, RetFrac, FallFrac float64

	// IndirectCallFrac is the indirect share of call terminators.
	IndirectCallFrac float64

	// RareFrac is the fraction of basic blocks marked rarely executed.
	RareFrac float64

	// BranchesPerBlockHist[i] counts 64-byte code blocks holding i branches
	// (i clipped to len-1); the Figure 8 raw data.
	BranchesPerBlockHist [9]int
}

// Stats computes the program's static statistics.
func (p *Program) Stats() StaticStats {
	var s StaticStats
	s.Functions = len(p.Funcs)
	s.BasicBlocks = len(p.Blocks)
	s.CodeBytes = len(p.Image.Code)

	var cond, jump, call, ret, fall, indirect, rare int
	for i := range p.Blocks {
		b := &p.Blocks[i]
		s.Instructions += len(b.Insts)
		switch b.Term {
		case TermCond:
			cond++
		case TermJump:
			jump++
		case TermCall:
			call++
			if b.Callee < 0 {
				indirect++
			}
		case TermRet:
			ret++
		default:
			fall++
		}
		if b.Rare {
			rare++
		}
	}
	n := float64(s.BasicBlocks)
	if n > 0 {
		s.AvgBlockInsts = float64(s.Instructions) / n
		s.CondFrac = float64(cond) / n
		s.JumpFrac = float64(jump) / n
		s.CallFrac = float64(call) / n
		s.RetFrac = float64(ret) / n
		s.FallFrac = float64(fall) / n
		s.RareFrac = float64(rare) / n
	}
	if call > 0 {
		s.IndirectCallFrac = float64(indirect) / float64(call)
	}

	if p.Image.Mode == isa.Fixed {
		first := isa.BlockOf(p.Image.Base)
		last := isa.BlockOf(p.Image.End() - 1)
		for blk := first; blk <= last; blk++ {
			n := len(isa.PredecodeBlock(p.Image, blk))
			if n >= len(s.BranchesPerBlockHist) {
				n = len(s.BranchesPerBlockHist) - 1
			}
			s.BranchesPerBlockHist[n]++
		}
	}
	return s
}

// String renders a short summary.
func (s StaticStats) String() string {
	return fmt.Sprintf(
		"%d funcs, %d blocks (%.1f insts avg), %d KB code; terminators: %.0f%% cond, %.0f%% jump, %.0f%% call (%.0f%% indirect), %.0f%% ret, %.0f%% fall; %.0f%% rare",
		s.Functions, s.BasicBlocks, s.AvgBlockInsts, s.CodeBytes>>10,
		100*s.CondFrac, 100*s.JumpFrac, 100*s.CallFrac, 100*s.IndirectCallFrac,
		100*s.RetFrac, 100*s.FallFrac, 100*s.RareFrac)
}
