package cfg

import (
	"math/rand"

	"dnc/internal/isa"
)

// layout assigns instruction sizes and addresses to every block plan,
// resolves branch targets, encodes the code image, and fills prog.Blocks.
// Functions are laid out back to back; blocks inside a function are
// contiguous, so intra-function fallthrough paths are sequential in memory —
// the property that makes most L1i misses of server workloads sequential.
func layout(prog *Program, plans []blockPlan, rng *rand.Rand) {
	p := prog.Params

	// Pass A: choose sizes and assign PCs.
	type placed struct {
		kinds []isa.Kind // body kinds plus terminator kind, in order
		sizes []uint8
		pcs   []isa.Addr
	}
	placedBlocks := make([]placed, len(plans))
	pc := p.CodeBase
	for i := range plans {
		bp := &plans[i]
		kinds := make([]isa.Kind, 0, len(bp.bodyKinds)+1)
		kinds = append(kinds, bp.bodyKinds...)
		if k, ok := termInstKind(bp); ok {
			kinds = append(kinds, k)
		}
		pl := placed{kinds: kinds}
		for _, k := range kinds {
			size := instSize(p.Mode, k, rng)
			pl.sizes = append(pl.sizes, size)
			pl.pcs = append(pl.pcs, pc)
			pc += isa.Addr(size)
		}
		placedBlocks[i] = pl
	}

	// Map function-local target indices to global block indices.
	globalTarget := make([]int32, len(plans))
	callee := make([]int32, len(plans))
	for fi := range prog.Funcs {
		fn := &prog.Funcs[fi]
		for bi := fn.First; bi <= fn.Last; bi++ {
			bp := &plans[bi]
			switch bp.term {
			case TermCond, TermJump:
				globalTarget[bi] = fn.First + bp.targetBB
			case TermCall:
				callee[bi] = bp.callee
			}
		}
	}

	// Pass B: build instructions with resolved targets and encode.
	entryOf := func(bb int32) isa.Addr { return placedBlocks[bb].pcs[0] }
	code := make([]byte, 0, int(pc-p.CodeBase))
	prog.Blocks = make([]Block, len(plans))
	for fi := range prog.Funcs {
		fn := &prog.Funcs[fi]
		for bi := fn.First; bi <= fn.Last; bi++ {
			bp := &plans[bi]
			pl := &placedBlocks[bi]
			blk := &prog.Blocks[bi]
			blk.Term = bp.term
			blk.TakenProb = bp.takenProb
			blk.StableBias = bp.stable
			blk.Rare = bp.rare
			blk.Func = int32(fi)
			blk.Callee = bp.callee
			blk.Callees = bp.callees
			if bi < fn.Last {
				blk.Next = bi + 1
			} else {
				blk.Next = -1
			}
			blk.TargetBB = -1

			blk.Insts = make([]isa.Inst, len(pl.kinds))
			for j, k := range pl.kinds {
				inst := isa.Inst{PC: pl.pcs[j], Size: pl.sizes[j], Kind: k}
				isTerm := bp.term != TermFall && j == len(pl.kinds)-1
				if isTerm {
					switch bp.term {
					case TermCond, TermJump:
						blk.TargetBB = globalTarget[bi]
						inst.Target = entryOf(globalTarget[bi])
					case TermCall:
						if bp.callee >= 0 {
							inst.Target = entryOf(prog.Funcs[callee[bi]].First)
						}
					}
				}
				blk.Insts[j] = inst
				code = isa.AppendInst(code, p.Mode, inst)
			}
		}
	}
	prog.Image = isa.NewImage(p.Mode, p.CodeBase, code)
}

// termInstKind maps a terminator to its instruction kind; TermFall has none.
// Indirect call sites use KindIndirect (an indirect call: the target comes
// from a register, and a return address is pushed).
func termInstKind(bp *blockPlan) (isa.Kind, bool) {
	switch bp.term {
	case TermCond:
		return isa.KindCondBranch, true
	case TermJump:
		return isa.KindJump, true
	case TermCall:
		if bp.callee < 0 {
			return isa.KindIndirect, true
		}
		return isa.KindCall, true
	case TermRet:
		return isa.KindReturn, true
	default:
		return 0, false
	}
}

// instSize picks an encoding size for the kind in the given mode.
func instSize(mode isa.Mode, k isa.Kind, rng *rand.Rand) uint8 {
	if mode == isa.Fixed {
		return isa.FixedSize
	}
	switch {
	case k.HasEncodedTarget():
		return uint8(isa.VarBranchMinSize + rng.Intn(isa.VarMaxSize-isa.VarBranchMinSize+1))
	case k == isa.KindReturn:
		return uint8(2 + rng.Intn(3))
	case k == isa.KindIndirect:
		return uint8(2 + rng.Intn(5))
	default:
		return uint8(2 + rng.Intn(7))
	}
}
