package cfg

import (
	"fmt"
	"math/rand"

	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Step is one committed instruction of the executed stream.
type Step struct {
	Inst isa.Inst
	// Taken reports the outcome of conditional branches; it is true for all
	// executed unconditional transfers.
	Taken bool
	// NextPC is the address of the next committed instruction.
	NextPC isa.Addr
	// TargetPC is the actual transfer target for taken branches (equal to
	// NextPC); for indirect branches this is where the target becomes known.
	TargetPC isa.Addr
	// DataAddr is the effective address of loads/stores; 0 otherwise.
	DataAddr isa.Addr
}

// Stream supplies a committed instruction stream to a simulated core: the
// generator-backed Walker, or a trace replayer (internal/trace.Stream).
type Stream interface {
	// Next fills *s with the next committed instruction.
	Next(s *Step)
}

// Walker executes a Program stochastically, producing the committed
// instruction stream. A Walker is deterministic given its seed. Multiple
// walkers with different seeds model the paper's independent measurement
// samples and the 16 cores running the same server workload.
type Walker struct {
	prog  *Program
	seed  int64
	src   *countingSource
	rng   *rand.Rand
	cur   int32      // current block index
	idx   int        // next instruction within the block
	insts []isa.Inst // Blocks[cur].Insts, cached to cut a pointer chase per step
	stack []int32

	dataHotBase  isa.Addr
	dataColdBase isa.Addr
}

// countingSource wraps the walker's PRNG source and counts draws. The
// stock math/rand generator does not expose its internal state, so the
// checkpoint subsystem snapshots a walker's randomness as (seed, draw
// count) and restores it by re-seeding and discarding that many draws —
// bit-exact, because every Int63/Uint64 call advances the underlying
// generator by exactly one step.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.draws++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.draws = 0 }

// NewWalker returns a walker over prog seeded with seed, positioned at the
// entry of a dispatcher-chosen function.
func NewWalker(prog *Program, seed int64) *Walker {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	w := &Walker{
		prog:         prog,
		seed:         seed,
		src:          src,
		rng:          rand.New(src),
		dataHotBase:  0x2_0000_0000,
		dataColdBase: 0x3_0000_0000,
		stack:        make([]int32, 0, 64),
	}
	w.dispatch()
	return w
}

// dispatch jumps to the entry of a new top-level function, modelling the
// server's main request loop picking up the next piece of work.
func (w *Walker) dispatch() {
	p := w.prog
	var fi int32
	if len(p.hot) > 0 && w.rng.Float64() < p.Params.HotCallProb {
		fi = p.hot[skewedIndex(w.rng, len(p.hot), p.Params.HotSkew)]
	} else {
		fi = int32(w.rng.Intn(len(p.Funcs)))
	}
	w.cur = p.Funcs[fi].First
	w.idx = 0
	w.insts = p.Blocks[w.cur].Insts
}

// Next advances one committed instruction, filling *s.
func (w *Walker) Next(s *Step) {
	p := w.prog
	inst := w.insts[w.idx]
	isTerm := w.idx == len(w.insts)-1
	blk := &p.Blocks[w.cur]

	*s = Step{Inst: inst}
	if inst.Kind == isa.KindLoad || inst.Kind == isa.KindStore {
		s.DataAddr = w.dataAddr()
	}

	if !isTerm || blk.Term == TermFall {
		// Advance within the block, or fall through to the next block.
		if !isTerm {
			w.idx++
		} else {
			w.moveTo(blk.Next)
		}
		s.NextPC = w.pc()
		return
	}

	// Terminator outcomes.
	switch blk.Term {
	case TermCond:
		taken := w.rng.Float64() < blk.TakenProb
		s.Taken = taken
		if taken {
			w.moveTo(blk.TargetBB)
			s.TargetPC = w.pc()
		} else {
			w.moveTo(blk.Next)
		}
	case TermJump:
		s.Taken = true
		w.moveTo(blk.TargetBB)
		s.TargetPC = w.pc()
	case TermCall:
		if len(w.stack) >= p.Params.MaxCallDepth {
			// Elide the call (leaf inlining): continue at the return site.
			w.moveTo(blk.Next)
			break
		}
		s.Taken = true
		w.stack = append(w.stack, blk.Next)
		callee := blk.Callee
		if callee < 0 {
			callee = w.pickIndirectCallee(blk)
		}
		w.moveTo(p.Funcs[callee].First)
		s.TargetPC = w.pc()
	case TermRet:
		s.Taken = true
		if n := len(w.stack); n > 0 {
			ret := w.stack[n-1]
			w.stack = w.stack[:n-1]
			if ret >= 0 {
				w.moveTo(ret)
			} else {
				w.dispatch()
			}
		} else {
			w.dispatch()
		}
		s.TargetPC = w.pc()
	}
	s.NextPC = w.pc()
}

// pickIndirectCallee selects among an indirect call site's candidates with a
// stable skew: the first candidate dominates, modelling mostly-monomorphic
// virtual dispatch.
func (w *Walker) pickIndirectCallee(blk *Block) int32 {
	if len(blk.Callees) == 0 {
		return 0
	}
	if w.rng.Float64() < 0.7 {
		return blk.Callees[0]
	}
	return blk.Callees[w.rng.Intn(len(blk.Callees))]
}

// moveTo positions the walker at the start of a block. A negative index
// (possible only for a missing fallthrough) re-dispatches.
func (w *Walker) moveTo(bb int32) {
	if bb < 0 {
		w.dispatch()
		return
	}
	w.cur = bb
	w.idx = 0
	w.insts = w.prog.Blocks[bb].Insts
}

// pc returns the address of the next instruction to execute.
func (w *Walker) pc() isa.Addr { return w.insts[w.idx].PC }

// dataAddr synthesises a load/store effective address with a hot/cold skew.
func (w *Walker) dataAddr() isa.Addr {
	p := w.prog.Params
	if w.rng.Float64() < p.DataHotProb {
		return w.dataHotBase + isa.Addr(w.rng.Intn(p.DataHotBytes))&^7
	}
	return w.dataColdBase + isa.Addr(w.rng.Intn(p.DataFootprintBytes))&^7
}

// CallDepth returns the current simulated call-stack depth.
func (w *Walker) CallDepth() int { return len(w.stack) }

// Snapshot serialises the walker's position and randomness. The PRNG is
// captured as (seed, draw count); see countingSource.
func (w *Walker) Snapshot(e *checkpoint.Encoder) {
	e.Begin("walker")
	e.I64(w.seed)
	e.U64(w.src.draws)
	e.I64(int64(w.cur))
	e.Int(w.idx)
	e.Int(len(w.stack))
	for _, bb := range w.stack {
		e.I64(int64(bb))
	}
	e.End()
}

// Restore loads state written by Snapshot, re-seeding the PRNG and
// replaying its draw count so the restored stream continues bit-exactly.
// The walker must have been built over the same program with the same seed.
func (w *Walker) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("walker"); err != nil {
		return err
	}
	seed := d.I64()
	if d.Err() == nil && seed != w.seed {
		return fmt.Errorf("%w: walker seed %d in snapshot, machine has %d",
			checkpoint.ErrCorrupt, seed, w.seed)
	}
	draws := d.U64()
	cur := int32(d.I64())
	idx := d.Int()
	if d.Err() == nil {
		if cur < 0 || int(cur) >= len(w.prog.Blocks) {
			return fmt.Errorf("%w: walker block index %d out of range", checkpoint.ErrCorrupt, cur)
		}
		if idx < 0 || idx >= len(w.prog.Blocks[cur].Insts) {
			return fmt.Errorf("%w: walker instruction index %d out of range", checkpoint.ErrCorrupt, idx)
		}
	}
	n := d.Count(8)
	stack := w.stack[:0]
	for i := 0; i < n; i++ {
		stack = append(stack, int32(d.I64()))
	}
	if err := d.End(); err != nil {
		return err
	}
	w.src.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		w.src.src.Uint64()
	}
	w.src.draws = draws
	w.cur, w.idx, w.stack = cur, idx, stack
	w.insts = w.prog.Blocks[cur].Insts
	return nil
}
