package cfg

import (
	"math/rand"

	"dnc/internal/isa"
)

// TermKind classifies how a basic block ends.
type TermKind uint8

// Basic-block terminators.
const (
	TermFall TermKind = iota // no branch; execution continues to Next
	TermCond                 // conditional branch: TargetBB if taken, Next otherwise
	TermJump                 // unconditional jump to TargetBB
	TermCall                 // call Callee (or one of Callees if indirect), return to Next
	TermRet                  // return to caller (dispatcher if stack empty)
)

// String names the terminator.
func (t TermKind) String() string {
	switch t {
	case TermFall:
		return "fall"
	case TermCond:
		return "cond"
	case TermJump:
		return "jump"
	case TermCall:
		return "call"
	case TermRet:
		return "ret"
	default:
		return "?"
	}
}

// Block is a basic block. Insts is filled during layout (PCs and sizes are
// address-dependent); the terminator, when present, is the last instruction.
type Block struct {
	Insts []isa.Inst
	Term  TermKind
	// TakenProb is the probability a TermCond branch is taken.
	TakenProb float64
	// StableBias marks strongly biased conditional branches.
	StableBias bool
	// TargetBB is the global index of the taken/jump target block.
	TargetBB int32
	// Callee is the function index of a direct call; -1 for indirect calls.
	Callee int32
	// Callees are the candidate functions of an indirect call site.
	Callees []int32
	// Next is the global index of the fallthrough successor; -1 for the
	// final block of a function.
	Next int32
	// Rare marks rarely executed blocks (guarded error paths).
	Rare bool
	// Func is the index of the owning function.
	Func int32
}

// Entry returns the block's first-instruction address. Layout must have run.
func (b *Block) Entry() isa.Addr { return b.Insts[0].PC }

// Terminator returns the terminating instruction, if the block has one.
func (b *Block) Terminator() (isa.Inst, bool) {
	if b.Term == TermFall || len(b.Insts) == 0 {
		return isa.Inst{}, false
	}
	return b.Insts[len(b.Insts)-1], true
}

// Func is a generated function: a contiguous run of basic blocks.
type Func struct {
	First, Last int32 // global block index range [First, Last]
	Hot         bool
}

// Program is a generated synthetic program.
type Program struct {
	Params Params
	Funcs  []Func
	Blocks []Block
	Image  *isa.Image
	hot    []int32 // indices of hot functions
}

// blockPlan is the pre-layout shape of a block.
type blockPlan struct {
	bodyKinds []isa.Kind
	term      TermKind
	takenProb float64
	stable    bool
	targetBB  int32
	callee    int32
	callees   []int32
	rare      bool
}

// Generate builds a program from the parameters. Generation is deterministic
// given Params (including GenSeed).
func Generate(p Params) *Program {
	p.setDefaults()
	rng := rand.New(rand.NewSource(p.GenSeed))

	prog := &Program{Params: p}
	var plans []blockPlan
	estBytes := 0
	avgInstBytes := 4.0
	if p.Mode == isa.Variable {
		avgInstBytes = 5.3
	}

	// Pass 1: structure. Generate functions until the estimated footprint is
	// reached. Call targets are resolved in pass 2 once the function count
	// is known.
	for estBytes < p.FootprintBytes {
		nBlocks := p.FuncMinBlocks + rng.Intn(p.FuncMaxBlocks-p.FuncMinBlocks+1)
		first := int32(len(plans))
		fnPlans := genFunctionPlan(p, rng, nBlocks)
		plans = append(plans, fnPlans...)
		prog.Funcs = append(prog.Funcs, Func{First: first, Last: int32(len(plans) - 1)})
		for _, bp := range fnPlans {
			n := len(bp.bodyKinds)
			if bp.term != TermFall {
				n++
			}
			estBytes += int(float64(n) * avgInstBytes)
		}
	}

	// Mark hot functions.
	nHot := int(float64(len(prog.Funcs)) * p.HotFuncFrac)
	if nHot < 1 {
		nHot = 1
	}
	perm := rng.Perm(len(prog.Funcs))
	for i := 0; i < nHot; i++ {
		prog.Funcs[perm[i]].Hot = true
		prog.hot = append(prog.hot, int32(perm[i]))
	}

	// Pass 2: resolve call sites.
	for i := range plans {
		bp := &plans[i]
		if bp.term != TermCall {
			continue
		}
		if rng.Float64() < p.IndirectCallFrac {
			bp.callee = -1
			n := 2 + rng.Intn(3)
			for j := 0; j < n; j++ {
				bp.callees = append(bp.callees, prog.pickCallee(rng))
			}
		} else {
			bp.callee = prog.pickCallee(rng)
		}
	}

	// Pass 3: layout — assign sizes/PCs, encode the image, build Blocks.
	layout(prog, plans, rng)
	return prog
}

// skewedIndex samples an index in [0, n) with an exponentially decaying
// head when skew > 0; skew 0 is uniform.
func skewedIndex(rng *rand.Rand, n int, skew float64) int {
	if n <= 1 {
		return 0
	}
	if skew <= 0 {
		return rng.Intn(n)
	}
	idx := int(rng.ExpFloat64() / skew * float64(n) / 8)
	return idx % n
}

// pickCallee selects a callee function with the configured hot/cold skew.
func (p *Program) pickCallee(rng *rand.Rand) int32 {
	if len(p.hot) > 0 && rng.Float64() < p.Params.HotCallProb {
		return p.hot[skewedIndex(rng, len(p.hot), p.Params.HotSkew)]
	}
	return int32(rng.Intn(len(p.Funcs)))
}

// genFunctionPlan generates the block plans of one function. Local block
// indices are stored in targetBB and fixed up by the caller via the global
// first index — targets here are relative to the function start.
func genFunctionPlan(p Params, rng *rand.Rand, nBlocks int) []blockPlan {
	plans := make([]blockPlan, nBlocks)

	// Choose rare blocks: interior blocks, never adjacent, always with a
	// guarding predecessor and a join successor.
	for i := 2; i < nBlocks-1; i++ {
		if plans[i-1].rare || plans[i-1].term == TermCond {
			continue
		}
		if rng.Float64() < p.RareBlockFrac {
			plans[i].rare = true
			// Guard: predecessor skips the rare block most of the time.
			plans[i-1].term = TermCond
			plans[i-1].targetBB = int32(i + 1)
			plans[i-1].takenProb = 1 - p.RareExecProb
			plans[i-1].stable = true
		}
	}

	for i := 0; i < nBlocks; i++ {
		bp := &plans[i]
		nBody := 1 + rng.Intn(2*p.AvgBlockInsts-1)
		bp.bodyKinds = make([]isa.Kind, 0, nBody)
		for j := 0; j < nBody; j++ {
			r := rng.Float64()
			switch {
			case r < p.LoadFrac:
				bp.bodyKinds = append(bp.bodyKinds, isa.KindLoad)
			case r < p.LoadFrac+p.StoreFrac:
				bp.bodyKinds = append(bp.bodyKinds, isa.KindStore)
			default:
				bp.bodyKinds = append(bp.bodyKinds, isa.KindALU)
			}
		}

		if i == nBlocks-1 {
			bp.term = TermRet
			continue
		}
		if bp.term == TermCond && bp.targetBB != 0 {
			continue // already set as a rare-block guard
		}
		r := rng.Float64()
		switch {
		case r < p.CondFrac:
			bp.term = TermCond
			backward := i > 0 && rng.Float64() < p.BackwardFrac
			if backward {
				bp.targetBB = int32(rng.Intn(i + 1))
				// Loop back-edges in server code have small trip counts;
				// a strongly taken nested back-edge would trap execution
				// in a tiny footprint, which server workloads never do.
				bp.takenProb = 0.3 + 0.3*rng.Float64()
			} else {
				bp.targetBB = int32(pickForwardTarget(rng, i, nBlocks, plans))
				if rng.Float64() < p.StableBiasFrac {
					bp.stable = true
					if rng.Float64() < 0.5 {
						bp.takenProb = p.TakenBias
					} else {
						bp.takenProb = 1 - p.TakenBias
					}
				} else {
					bp.takenProb = p.WeakBias
				}
			}
		case r < p.CondFrac+p.JumpFrac:
			bp.term = TermJump
			bp.targetBB = int32(pickForwardTarget(rng, i, nBlocks, plans))
		case r < p.CondFrac+p.JumpFrac+p.CallFrac:
			bp.term = TermCall
		default:
			bp.term = TermFall
		}
	}
	return plans
}

// pickForwardTarget picks a forward target, skewed to nearby blocks and
// avoiding rare blocks when possible.
func pickForwardTarget(rng *rand.Rand, i, nBlocks int, plans []blockPlan) int {
	if i >= nBlocks-1 {
		return nBlocks - 1
	}
	for try := 0; try < 4; try++ {
		d := 1 + geometric(rng, 0.5)
		t := i + d
		if t > nBlocks-1 {
			t = nBlocks - 1
		}
		if !plans[t].rare {
			return t
		}
	}
	return nBlocks - 1
}

// geometric samples a geometric random variate with success probability p
// (support 0, 1, 2, ...).
func geometric(rng *rand.Rand, p float64) int {
	n := 0
	for rng.Float64() >= p && n < 32 {
		n++
	}
	return n
}

// FuncOfBlock returns the function owning the global block index.
func (p *Program) FuncOfBlock(bb int32) *Func { return &p.Funcs[p.Blocks[bb].Func] }

// NumInsts returns the total static instruction count.
func (p *Program) NumInsts() int {
	n := 0
	for i := range p.Blocks {
		n += len(p.Blocks[i].Insts)
	}
	return n
}
