package cfg

import (
	"math/rand"
	"testing"

	"dnc/internal/isa"
)

func testParams(mode isa.Mode) Params {
	return Params{
		Name:           "test",
		Mode:           mode,
		FootprintBytes: 256 << 10,
		GenSeed:        42,
		LoadFrac:       0.2,
		StoreFrac:      0.1,
		RareBlockFrac:  0.08,
		BackwardFrac:   0.1,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testParams(isa.Fixed))
	b := Generate(testParams(isa.Fixed))
	if len(a.Blocks) != len(b.Blocks) || len(a.Funcs) != len(b.Funcs) {
		t.Fatalf("structure differs: %d/%d blocks, %d/%d funcs",
			len(a.Blocks), len(b.Blocks), len(a.Funcs), len(b.Funcs))
	}
	if len(a.Image.Code) != len(b.Image.Code) {
		t.Fatalf("image sizes differ: %d vs %d", len(a.Image.Code), len(b.Image.Code))
	}
	for i := range a.Image.Code {
		if a.Image.Code[i] != b.Image.Code[i] {
			t.Fatalf("image bytes differ at %d", i)
		}
	}
}

func TestGenerateFootprint(t *testing.T) {
	for _, mode := range []isa.Mode{isa.Fixed, isa.Variable} {
		p := testParams(mode)
		prog := Generate(p)
		got := len(prog.Image.Code)
		if got < p.FootprintBytes*85/100 || got > p.FootprintBytes*3/2 {
			t.Errorf("%v: footprint %d, want roughly %d", mode, got, p.FootprintBytes)
		}
	}
}

func TestLayoutContiguousAndDecodable(t *testing.T) {
	for _, mode := range []isa.Mode{isa.Fixed, isa.Variable} {
		prog := Generate(testParams(mode))
		pc := prog.Params.CodeBase
		for bi := range prog.Blocks {
			blk := &prog.Blocks[bi]
			if len(blk.Insts) == 0 {
				t.Fatalf("%v: empty block %d", mode, bi)
			}
			for _, inst := range blk.Insts {
				if inst.PC != pc {
					t.Fatalf("%v: block %d inst at %#x, expected %#x", mode, bi, inst.PC, pc)
				}
				dec, ok := prog.Image.DecodeAt(pc)
				if !ok {
					t.Fatalf("%v: cannot decode at %#x", mode, pc)
				}
				if dec.Kind != inst.Kind || dec.Size != inst.Size {
					t.Fatalf("%v: decode mismatch at %#x: %+v vs %+v", mode, pc, dec, inst)
				}
				if inst.Kind.HasEncodedTarget() && dec.Target != inst.Target {
					t.Fatalf("%v: target mismatch at %#x: %#x vs %#x", mode, pc, dec.Target, inst.Target)
				}
				pc += isa.Addr(inst.Size)
			}
		}
		if pc != prog.Image.End() {
			t.Fatalf("%v: image length mismatch: pc=%#x end=%#x", mode, pc, prog.Image.End())
		}
	}
}

func TestTerminatorInvariants(t *testing.T) {
	prog := Generate(testParams(isa.Fixed))
	for fi := range prog.Funcs {
		fn := &prog.Funcs[fi]
		last := &prog.Blocks[fn.Last]
		if last.Term != TermRet {
			t.Fatalf("func %d: last block terminator = %v, want ret", fi, last.Term)
		}
		for bi := fn.First; bi <= fn.Last; bi++ {
			blk := &prog.Blocks[bi]
			if blk.Func != int32(fi) {
				t.Fatalf("block %d owner = %d, want %d", bi, blk.Func, fi)
			}
			switch blk.Term {
			case TermCond, TermJump:
				if blk.TargetBB < fn.First || blk.TargetBB > fn.Last {
					t.Fatalf("block %d: target %d outside func [%d,%d]",
						bi, blk.TargetBB, fn.First, fn.Last)
				}
			case TermCall:
				if blk.Callee >= 0 && int(blk.Callee) >= len(prog.Funcs) {
					t.Fatalf("block %d: callee %d out of range", bi, blk.Callee)
				}
				if blk.Callee < 0 && len(blk.Callees) == 0 {
					t.Fatalf("block %d: indirect call without candidates", bi)
				}
			}
			if bi < fn.Last && blk.Next != bi+1 {
				t.Fatalf("block %d: next = %d, want %d", bi, blk.Next, bi+1)
			}
			term, ok := blk.Terminator()
			if blk.Term == TermFall {
				if ok {
					t.Fatalf("block %d: fallthrough with terminator %v", bi, term)
				}
			} else if !ok || !term.Kind.IsBranch() {
				t.Fatalf("block %d: terminator %v for %v", bi, term.Kind, blk.Term)
			}
		}
	}
}

func TestWalkerStreamConsistency(t *testing.T) {
	for _, mode := range []isa.Mode{isa.Fixed, isa.Variable} {
		prog := Generate(testParams(mode))
		w := NewWalker(prog, 7)
		var s Step
		prevNext := isa.Addr(0)
		for i := 0; i < 200000; i++ {
			w.Next(&s)
			if prevNext != 0 && s.Inst.PC != prevNext {
				t.Fatalf("%v: step %d: PC %#x does not follow previous NextPC %#x",
					mode, i, s.Inst.PC, prevNext)
			}
			prevNext = s.NextPC
			if !s.Inst.Kind.IsBranch() && s.NextPC != s.Inst.NextPC() {
				t.Fatalf("%v: non-branch with control transfer at %#x", mode, s.Inst.PC)
			}
			if s.Inst.Kind == isa.KindCondBranch && !s.Taken && s.NextPC != s.Inst.NextPC() {
				t.Fatalf("%v: not-taken branch did not fall through at %#x", mode, s.Inst.PC)
			}
			if s.Taken && s.Inst.Kind.HasEncodedTarget() && s.NextPC != s.Inst.Target {
				t.Fatalf("%v: taken direct branch to %#x, encoded target %#x",
					mode, s.NextPC, s.Inst.Target)
			}
			if (s.Inst.Kind == isa.KindLoad || s.Inst.Kind == isa.KindStore) && s.DataAddr == 0 {
				t.Fatalf("%v: memory op without data address", mode)
			}
		}
	}
}

func TestWalkerDeterminism(t *testing.T) {
	prog := Generate(testParams(isa.Fixed))
	w1 := NewWalker(prog, 11)
	w2 := NewWalker(prog, 11)
	var s1, s2 Step
	for i := 0; i < 50000; i++ {
		w1.Next(&s1)
		w2.Next(&s2)
		if s1 != s2 {
			t.Fatalf("step %d differs: %+v vs %+v", i, s1, s2)
		}
	}
}

func TestWalkerSeedsDiffer(t *testing.T) {
	prog := Generate(testParams(isa.Fixed))
	w1 := NewWalker(prog, 1)
	w2 := NewWalker(prog, 2)
	var s1, s2 Step
	same := 0
	for i := 0; i < 1000; i++ {
		w1.Next(&s1)
		w2.Next(&s2)
		if s1.Inst.PC == s2.Inst.PC {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestBranchBiasObserved(t *testing.T) {
	prog := Generate(testParams(isa.Fixed))
	w := NewWalker(prog, 3)
	taken := map[isa.Addr]int{}
	total := map[isa.Addr]int{}
	var s Step
	for i := 0; i < 500000; i++ {
		w.Next(&s)
		if s.Inst.Kind == isa.KindCondBranch {
			total[s.Inst.PC]++
			if s.Taken {
				taken[s.Inst.PC]++
			}
		}
	}
	// Most conditional branches with enough samples should be strongly
	// biased (StableBiasFrac defaults to 0.85).
	biased, sampled := 0, 0
	for pc, n := range total {
		if n < 50 {
			continue
		}
		sampled++
		r := float64(taken[pc]) / float64(n)
		if r > 0.85 || r < 0.15 {
			biased++
		}
	}
	if sampled == 0 {
		t.Fatal("no branches sampled")
	}
	frac := float64(biased) / float64(sampled)
	if frac < 0.6 {
		t.Errorf("only %.2f of sampled branches strongly biased, want >= 0.6", frac)
	}
}

func TestRareBlocksAreRare(t *testing.T) {
	prog := Generate(testParams(isa.Fixed))
	nRare := 0
	for i := range prog.Blocks {
		if prog.Blocks[i].Rare {
			nRare++
		}
	}
	if nRare == 0 {
		t.Skip("no rare blocks generated with this seed")
	}
	w := NewWalker(prog, 5)
	var s Step
	rareExec, totalExec := 0, 0
	enter := map[isa.Addr]bool{}
	for i := range prog.Blocks {
		if prog.Blocks[i].Rare {
			enter[prog.Blocks[i].Entry()] = true
		}
	}
	allEntries := map[isa.Addr]bool{}
	for i := range prog.Blocks {
		allEntries[prog.Blocks[i].Entry()] = true
	}
	for i := 0; i < 500000; i++ {
		w.Next(&s)
		if allEntries[s.Inst.PC] {
			totalExec++
			if enter[s.Inst.PC] {
				rareExec++
			}
		}
	}
	staticFrac := float64(nRare) / float64(len(prog.Blocks))
	dynFrac := float64(rareExec) / float64(totalExec)
	if dynFrac > staticFrac/2 {
		t.Errorf("rare blocks executed at %.4f of block entries (static fraction %.4f); guards ineffective",
			dynFrac, staticFrac)
	}
}

func TestCallDepthBounded(t *testing.T) {
	p := testParams(isa.Fixed)
	p.MaxCallDepth = 8
	prog := Generate(p)
	w := NewWalker(prog, 9)
	var s Step
	for i := 0; i < 300000; i++ {
		w.Next(&s)
		if w.CallDepth() > 8 {
			t.Fatalf("call depth %d exceeds bound", w.CallDepth())
		}
	}
}

func TestNumInsts(t *testing.T) {
	prog := Generate(testParams(isa.Fixed))
	n := prog.NumInsts()
	if n*isa.FixedSize != len(prog.Image.Code) {
		t.Fatalf("NumInsts=%d but image has %d bytes", n, len(prog.Image.Code))
	}
}

func TestStaticStats(t *testing.T) {
	p := testParams(isa.Fixed)
	prog := Generate(p)
	s := prog.Stats()
	if s.Functions != len(prog.Funcs) || s.BasicBlocks != len(prog.Blocks) {
		t.Fatalf("structure counts wrong: %+v", s)
	}
	if s.Instructions != prog.NumInsts() {
		t.Fatalf("instruction count mismatch: %d vs %d", s.Instructions, prog.NumInsts())
	}
	total := s.CondFrac + s.JumpFrac + s.CallFrac + s.RetFrac + s.FallFrac
	if total < 0.999 || total > 1.001 {
		t.Fatalf("terminator fractions sum to %v", total)
	}
	// The requested conditional fraction applies to non-final blocks, so
	// the measured value sits near (mostly below) the defaulted knob.
	knob := prog.Params.CondFrac
	if s.CondFrac < knob/2 || s.CondFrac > knob*1.3 {
		t.Errorf("cond fraction %.2f far from knob %.2f", s.CondFrac, knob)
	}
	// The histogram covers every code block.
	sum := 0
	for _, n := range s.BranchesPerBlockHist {
		sum += n
	}
	want := (len(prog.Image.Code) + isa.BlockBytes - 1) / isa.BlockBytes
	if sum != want {
		t.Fatalf("histogram covers %d blocks, want %d", sum, want)
	}
	if s.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestImageDecodeRobustAgainstGarbage(t *testing.T) {
	// A pre-decoder probing arbitrary offsets must never panic, whatever
	// bytes it reads.
	rng := rand.New(rand.NewSource(7))
	raw := make([]byte, 4096)
	rng.Read(raw)
	for _, mode := range []isa.Mode{isa.Fixed, isa.Variable} {
		im := isa.NewImage(mode, 0x1000, raw)
		for off := 0; off < 256; off++ {
			isa.DecodeBranchAt(im, isa.BlockOf(0x1000), uint8(off%64))
			im.DecodeAt(0x1000 + isa.Addr(off))
		}
		isa.PredecodeBlock(im, isa.BlockOf(0x1000))
	}
}
