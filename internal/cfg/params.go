// Package cfg models server-workload instruction streams. It generates a
// synthetic program — functions made of basic blocks laid out in a flat
// address space and encoded into a real code image — and executes it with a
// seeded stochastic walker, producing the committed instruction stream that
// drives the timing simulator.
//
// The paper's workloads (TPC-C on Oracle/DB2, SPECweb99 on Apache/Zeus,
// CloudSuite) are commercial software we cannot run; what the evaluated
// prefetchers actually respond to is a set of statistical properties of the
// fetch stream: multi-megabyte instruction footprints, mostly-sequential
// intra-function fetch runs punctuated by call/return/branch discontinuities,
// strongly biased conditional branches, rarely executed error-handling
// paths, and a hot/cold function skew. Params exposes exactly those
// properties as knobs; internal/workloads calibrates one preset per paper
// workload against the paper's own measurements (Figures 2, 6, 7 and 8).
package cfg

import "dnc/internal/isa"

// Params configures program generation and execution.
type Params struct {
	// Name labels the workload in reports.
	Name string

	// Mode selects the instruction encoding (fixed or variable length).
	Mode isa.Mode

	// CodeBase is the address of the first function.
	CodeBase isa.Addr

	// FootprintBytes is the approximate total code size. Server workloads
	// have footprints far exceeding the 32 KB L1i (megabytes).
	FootprintBytes int

	// AvgBlockInsts is the mean basic-block length in instructions.
	AvgBlockInsts int

	// FuncMinBlocks/FuncMaxBlocks bound basic blocks per function. Together
	// with AvgBlockInsts this sets the length of sequential fetch runs and
	// therefore the sequential fraction of L1i misses (Figure 2).
	FuncMinBlocks, FuncMaxBlocks int

	// CondFrac, JumpFrac, CallFrac are the probabilities that a non-final
	// basic block ends in a conditional branch, an unconditional jump, or a
	// call; the remainder fall through. The final block of a function always
	// returns.
	CondFrac, JumpFrac, CallFrac float64

	// IndirectCallFrac is the fraction of call sites that are indirect
	// (virtual dispatch); each such site selects among a few callees at run
	// time.
	IndirectCallFrac float64

	// StableBiasFrac is the fraction of conditional branches with a strongly
	// biased direction; the rest are weakly biased. Strong bias is what
	// makes next-block access patterns (Figure 6) and per-block
	// discontinuity branches (Figure 7) predictable.
	StableBiasFrac float64

	// TakenBias is the taken probability of a strongly biased branch (or
	// 1-TakenBias when biased not-taken).
	TakenBias float64

	// WeakBias is the taken probability of weakly biased branches.
	WeakBias float64

	// BackwardFrac is the fraction of conditional branches whose target is
	// backward (loops). Server code is notoriously loop-poor.
	BackwardFrac float64

	// RareBlockFrac is the fraction of basic blocks that model rarely
	// executed code (exception handlers, error paths). A rare block is
	// guarded by a mostly-taken forward branch that skips it, producing the
	// useless-prefetch pattern of Algorithm 1 in the paper.
	RareBlockFrac float64

	// RareExecProb is the probability a guarded rare block actually runs.
	RareExecProb float64

	// HotFuncFrac is the fraction of functions considered hot; HotCallProb
	// is the probability a call site targets a hot function.
	HotFuncFrac float64
	HotCallProb float64

	// HotSkew concentrates hot-function popularity: 0 picks uniformly among
	// hot functions; larger values make an exponentially decaying head of
	// the hot list receive most calls (real server profiles are heavily
	// skewed, which is what gives BTB-resident structures their temporal
	// reuse).
	HotSkew float64

	// MaxCallDepth bounds the simulated call stack; calls beyond the bound
	// are elided (treated as fallthrough), modelling inlining of leaves.
	MaxCallDepth int

	// LoadFrac/StoreFrac are per-instruction probabilities for memory ops
	// among non-terminator instructions.
	LoadFrac, StoreFrac float64

	// Data side: loads hit a hot region of DataHotBytes with probability
	// DataHotProb, otherwise the full DataFootprintBytes region.
	DataFootprintBytes int
	DataHotBytes       int
	DataHotProb        float64

	// GenSeed seeds program generation (layout, biases, callees).
	GenSeed int64
}

// setDefaults fills zero-valued fields with documented defaults so partial
// parameter sets (tests, custom workloads) behave sensibly.
func (p *Params) setDefaults() {
	if p.CodeBase == 0 {
		p.CodeBase = 0x40_0000
	}
	if p.FootprintBytes == 0 {
		p.FootprintBytes = 2 << 20
	}
	if p.AvgBlockInsts == 0 {
		p.AvgBlockInsts = 8
	}
	if p.FuncMinBlocks == 0 {
		p.FuncMinBlocks = 6
	}
	if p.FuncMaxBlocks == 0 {
		p.FuncMaxBlocks = 24
	}
	if p.CondFrac == 0 && p.JumpFrac == 0 && p.CallFrac == 0 {
		p.CondFrac, p.JumpFrac, p.CallFrac = 0.45, 0.08, 0.22
	}
	if p.StableBiasFrac == 0 {
		p.StableBiasFrac = 0.85
	}
	if p.TakenBias == 0 {
		p.TakenBias = 0.95
	}
	if p.WeakBias == 0 {
		p.WeakBias = 0.6
	}
	if p.RareExecProb == 0 {
		p.RareExecProb = 0.03
	}
	if p.HotFuncFrac == 0 {
		p.HotFuncFrac = 0.2
	}
	if p.HotCallProb == 0 {
		p.HotCallProb = 0.85
	}
	if p.MaxCallDepth == 0 {
		p.MaxCallDepth = 24
	}
	if p.DataFootprintBytes == 0 {
		p.DataFootprintBytes = 32 << 20
	}
	if p.DataHotBytes == 0 {
		p.DataHotBytes = 128 << 10
	}
	if p.DataHotProb == 0 {
		p.DataHotProb = 0.85
	}
}
