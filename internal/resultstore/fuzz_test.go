package resultstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The fuzz wall: arbitrary bytes through the block and series decoders
// must yield typed errors or valid cells — never a panic, never an
// unbounded allocation (every count is validated against remaining input
// before any make). Both targets are seeded with the golden corpus so the
// fuzzer starts from structurally valid inputs and mutates inward.

func fuzzSeedStores(f *testing.F) {
	f.Helper()
	cells := goldenCells()
	f.Add(Marshal(cells))
	f.Add(Marshal(cells[:1]))
	f.Add(Marshal(nil))
	f.Add(appendHeader(nil))
	// A store with an unknown auxiliary block kind (forward compat path).
	withAux := appendBlock(Marshal(cells[:2]), 0x7F, []byte("future block"))
	f.Add(withAux)
	if golden, err := os.ReadFile(filepath.Join("testdata", "v1_basic.dncr")); err == nil {
		f.Add(golden)
	}
}

func FuzzBlockDecode(f *testing.F) {
	fuzzSeedStores(f)
	f.Add([]byte{})
	f.Add([]byte("DNCR"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the fuzzer's input so a giant random buffer can't make the
		// decoder look slow for reasons unrelated to format handling.
		if len(data) > 1<<20 {
			return
		}
		cells, err := decodeAll(data, CellOptions{WithHists: true, WithSeries: true})
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Valid input: the filtered decode paths must agree with the full
		// one, and what decoded must re-encode without panicking.
		scalar, err := decodeAll(data, CellOptions{})
		if err != nil {
			t.Fatalf("full decode ok but scalar-only failed: %v", err)
		}
		if len(scalar) != len(cells) {
			t.Fatalf("section skipping changed cell count: %d vs %d", len(scalar), len(cells))
		}
		if len(cells) > 0 {
			_ = Marshal(cells)
		}
		if _, err := Verify(data); err != nil {
			t.Fatalf("decode ok but Verify failed: %v", err)
		}
	})
}

func FuzzSeriesDecode(f *testing.F) {
	f.Add(encodeSeriesBlob(nil, nil))
	f.Add(encodeSeriesBlob([]uint64{256}, []float64{1.5}))
	f.Add(encodeSeriesBlob(
		[]uint64{256, 512, 768, 1024, 1280},
		[]float64{1.5, 1.5, 1.25, 1.75, math.Inf(1)}))
	f.Add(encodeSeriesBlob([]uint64{100, 50, ^uint64(0), 0}, []float64{0, -0.0, 1e308, math.NaN()}))
	f.Add([]byte{})
	f.Add([]byte{0x05})
	f.Fuzz(func(t *testing.T, blob []byte) {
		if len(blob) > 1<<20 {
			return
		}
		cycles, values, err := decodeSeriesBlob(blob)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped series decode error: %v", err)
			}
			return
		}
		if len(cycles) != len(values) {
			t.Fatalf("decoded %d cycles but %d values", len(cycles), len(values))
		}
		// Decoded series must survive a round trip: re-encode, decode, and
		// get the identical points back (the blob itself need not be
		// canonical — a fuzzer can pad windows — but the data must be).
		cyc2, val2, err := decodeSeriesBlob(encodeSeriesBlob(cycles, values))
		if err != nil {
			t.Fatalf("re-encode of decoded series failed: %v", err)
		}
		for i := range cycles {
			if cyc2[i] != cycles[i] || math.Float64bits(val2[i]) != math.Float64bits(values[i]) {
				t.Fatalf("re-encode round trip diverged at point %d", i)
			}
		}
	})
}
