package resultstore

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MetricIPC is the derived metric name Scan accepts alongside the stored
// counter columns: retired instructions per cycle, computed per cell from
// m.Retired and m.Cycles.
const MetricIPC = "ipc"

// Query is one aggregate question against a store: which cells (tag
// filters, nil = any) and which metric. Metric is a stored column name
// ("m.Retired", "llc.InstHits", …) or the derived MetricIPC.
type Query struct {
	Workloads []string
	Designs   []string
	Seeds     []int64
	Metric    string
}

// Group is one aggregate row: the per-cell metric values of one
// design × workload group, reduced.
type Group struct {
	Workload string  `json:"workload"`
	Design   string  `json:"design"`
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval of the mean (0 for a single sample).
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Scan answers an aggregate query: one Group per design × workload pair
// with at least one matching cell, sorted by workload then design. This is
// the "IPC CI for every design × workload" question answered from the file
// alone — no simulator, no journal re-parse.
func Scan(r *Reader, q Query) ([]Group, error) {
	if q.Metric == "" {
		return nil, fmt.Errorf("resultstore: query needs a metric")
	}
	cells, err := r.Cells(CellOptions{Workloads: q.Workloads, Designs: q.Designs, Seeds: q.Seeds})
	if err != nil {
		return nil, err
	}
	type acc struct{ vals []float64 }
	groups := map[string]*acc{}
	for i := range cells {
		v, ok := cellMetric(&cells[i], q.Metric)
		if !ok {
			return nil, fmt.Errorf("resultstore: cell %s has no metric %q", cells[i].Key(), q.Metric)
		}
		k := cells[i].Workload + "\x00" + cells[i].Design
		a := groups[k]
		if a == nil {
			a = &acc{}
			groups[k] = a
		}
		a.vals = append(a.vals, v)
	}
	out := make([]Group, 0, len(groups))
	for k, a := range groups {
		parts := strings.SplitN(k, "\x00", 2)
		g := Group{Workload: parts[0], Design: parts[1], N: len(a.vals)}
		g.Min, g.Max = a.vals[0], a.vals[0]
		var sum float64
		for _, v := range a.vals {
			sum += v
			if v < g.Min {
				g.Min = v
			}
			if v > g.Max {
				g.Max = v
			}
		}
		g.Mean = sum / float64(g.N)
		if g.N > 1 {
			var ss float64
			for _, v := range a.vals {
				d := v - g.Mean
				ss += d * d
			}
			// Sample stddev, normal approximation: ±1.96·s/√n.
			g.CI95 = 1.96 * math.Sqrt(ss/float64(g.N-1)) / math.Sqrt(float64(g.N))
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Design < out[j].Design
	})
	return out, nil
}

// cellMetric resolves a metric name against one cell.
func cellMetric(c *Cell, name string) (float64, bool) {
	if name == MetricIPC {
		cycles, ok := c.Metrics["m.Cycles"]
		if !ok || cycles == 0 {
			return 0, ok
		}
		retired, ok := c.Metrics["m.Retired"]
		if !ok {
			return 0, false
		}
		return float64(retired) / float64(cycles), true
	}
	v, ok := c.Metrics[name]
	return float64(v), ok
}
