package resultstore

import (
	"reflect"

	"dnc/internal/sim/runner"
)

// SetResult fills the cell's measurement fields (Metrics, Hists, Series)
// from a journaled result. The identity tags are the caller's: the result
// wire form carries workload and design but not the sweep coordinates
// (mode, cores, windows, seed), which live in the cell spec or bench plan.
//
// Scalar columns are named by origin:
//
//	m.<Field>     aggregate core.Metrics counter (m.Retired, m.Cycles, …)
//	llc.<Field>   llc.Stats counter
//	noc.flits / noc.queued / dram.queued / storage.bits   uncore scalars
//	ctr.<name>    obs registry counter (mshr.highwater.core0, …)
//
// The metric set is produced by reflection over the counter structs, so a
// counter added to core.Metrics or llc.Stats becomes a store column in the
// same commit — no second registration site to forget (the runner's
// field-coverage test enforces the same property for the wire form
// itself). Per-core metric breakdowns are deliberately not stored: the
// store answers cross-sweep aggregate queries, and per-core drill-down
// stays with the journal, which keeps full fidelity.
func (c *Cell) SetResult(r *runner.ResultJSON) {
	m := make(map[string]uint64, 48)
	addUintFields(m, "m.", reflect.ValueOf(r.M))
	addUintFields(m, "llc.", reflect.ValueOf(r.LLCStats))
	m["noc.flits"] = r.NoCFlits
	m["noc.queued"] = r.NoCQueued
	m["dram.queued"] = r.DRAMQueued
	m["storage.bits"] = uint64(r.StorageBits)

	c.Hists, c.Series = nil, nil
	if r.Obs != nil {
		for _, cv := range r.Obs.Counters {
			m["ctr."+cv.Name] = cv.Value
		}
		for _, h := range r.Obs.Hists {
			c.Hists = append(c.Hists, Hist{
				Name:   h.Name,
				Bounds: h.Bounds,
				Counts: h.Counts,
				N:      h.N,
				Sum:    h.Sum,
				Min:    h.Min,
				Max:    h.Max,
			})
		}
		for _, s := range r.Obs.Series {
			c.Series = append(c.Series, Series{Name: s.Name, Cycles: s.Cycles, Values: s.Values})
		}
	}
	c.Metrics = m
}

// addUintFields adds every uint64 field of a flat counter struct as
// prefix+FieldName.
func addUintFields(dst map[string]uint64, prefix string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() == reflect.Uint64 {
			dst[prefix+f.Name] = v.Field(i).Uint()
		}
	}
}
