package resultstore

import (
	"fmt"
	"os"
)

// Reader answers queries against a marshalled store. It holds the raw
// bytes and decodes lazily per call, so opening a store is cheap and a
// filtered scan only pays for the segments and sections it touches.
type Reader struct {
	data []byte
}

// NewReader wraps in-memory store bytes, validating the header eagerly so
// an outright wrong file fails at open, not first query.
func NewReader(data []byte) (*Reader, error) {
	if _, err := checkHeader(data); err != nil {
		return nil, err
	}
	return &Reader{data: data}, nil
}

// OpenReader reads and wraps a store file.
func OpenReader(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resultstore: reading %s: %w", path, err)
	}
	r, err := NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Size returns the store's size in bytes.
func (r *Reader) Size() int { return len(r.data) }

// Verify re-checksums every block.
func (r *Reader) Verify() (blocks int, err error) { return Verify(r.data) }

// Cells decodes every cell matching the options, in file order.
func (r *Reader) Cells(opt CellOptions) ([]Cell, error) {
	return decodeAll(r.data, opt)
}

// BlockSizes returns the framed on-disk size of every valid block, in file
// order — `dncstore info`'s view of how the file is segmented.
func (r *Reader) BlockSizes() []int { return blockSizes(r.data) }
