package resultstore

import (
	"math/rand"
	"testing"
)

// The gated hot-path benchmarks (scripts/benchdiff.sh vs
// BENCH_resultstore.json) are the flat ones: a fixed 4096-point mixed
// workload through the series codec and a 64-cell segment through the
// store codec. The per-shape sub-benchmarks feed the appendix tables in
// docs/RESULTSTORE_BENCH.md and are not gated — shapes compress
// differently by design, and the gate only needs to catch a lost fast
// path, not re-litigate the format.

func benchSeries(n int) ([]uint64, []float64) {
	rng := rand.New(rand.NewSource(17))
	cycles, values := make([]uint64, n), make([]float64, n)
	for i := range cycles {
		cycles[i] = uint64(i+1) * 256
		switch {
		case i%7 == 0: // occasional burst
			values[i] = 50 + float64(rng.Intn(100))
		default: // quantized gauge drift
			values[i] = 1 + float64(rng.Intn(64))/64
		}
	}
	return cycles, values
}

func BenchmarkSeriesEncode(b *testing.B) {
	cycles, values := benchSeries(4096)
	blob := encodeSeriesBlob(cycles, values)
	b.SetBytes(int64(len(cycles) * 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeSeriesBlob(cycles, values)
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(len(blob))/float64(len(cycles)), "bytes/point")
}

func BenchmarkSeriesDecode(b *testing.B) {
	cycles, values := benchSeries(4096)
	blob := encodeSeriesBlob(cycles, values)
	b.SetBytes(int64(len(cycles) * 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decodeSeriesBlob(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCells() []Cell {
	rng := rand.New(rand.NewSource(19))
	cells := make([]Cell, 64)
	for i := range cells {
		cells[i] = testCell(i)
		cy, va := benchSeries(256)
		cells[i].Series = []Series{{Name: "series.ipc", Cycles: cy, Values: va}}
		cells[i].Metrics["m.Retired"] = rng.Uint64() >> 30
	}
	return cells
}

func BenchmarkSegmentEncode(b *testing.B) {
	cells := benchCells()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeSegment(cells)
	}
}

func BenchmarkSegmentDecode(b *testing.B) {
	payload := encodeSegment(benchCells())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeSegment(payload, CellOptions{WithHists: true, WithSeries: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-shape appendix benchmarks (docs/RESULTSTORE_BENCH.md).
func BenchmarkSeriesEncodeShapes(b *testing.B) {
	for _, g := range seriesGens {
		b.Run(g.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(29))
			cycles, values := g.gen(rng, 4096)
			blob := encodeSeriesBlob(cycles, values)
			b.SetBytes(int64(len(cycles) * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				encodeSeriesBlob(cycles, values)
			}
			b.ReportMetric(float64(len(blob))/float64(len(cycles)), "bytes/point")
		})
	}
}

func BenchmarkSeriesDecodeShapes(b *testing.B) {
	for _, g := range seriesGens {
		b.Run(g.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(29))
			cycles, values := g.gen(rng, 4096)
			blob := encodeSeriesBlob(cycles, values)
			b.SetBytes(int64(len(cycles) * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := decodeSeriesBlob(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
