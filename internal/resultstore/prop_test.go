package resultstore

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Series generators mirroring the mebo benchmark shapes: the codec must be
// bit-exact on all of them, and the compression claims in
// docs/RESULTSTORE_BENCH.md are measured on them.

func genSteady(rng *rand.Rand, n int) ([]uint64, []float64) {
	cycles, values := make([]uint64, n), make([]float64, n)
	// Quantized like a real occupancy gauge: a mean over cores only takes
	// values k/64, so consecutive XORs share long trailing-zero runs.
	base := 1 + float64(rng.Intn(256))/64
	for i := range cycles {
		cycles[i] = uint64(i+1) * 256
		values[i] = base + float64(rng.Intn(8))/64
	}
	return cycles, values
}

func genSeasonal(rng *rand.Rand, n int) ([]uint64, []float64) {
	cycles, values := make([]uint64, n), make([]float64, n)
	amp := 1 + rng.Float64()*10
	for i := range cycles {
		cycles[i] = uint64(i+1) * 256
		values[i] = amp * (1 + math.Sin(float64(i)/8))
	}
	return cycles, values
}

func genBursty(rng *rand.Rand, n int) ([]uint64, []float64) {
	cycles, values := make([]uint64, n), make([]float64, n)
	for i := range cycles {
		cycles[i] = uint64(i+1) * 256
		values[i] = 0.5
		if rng.Intn(10) == 0 {
			values[i] = 50 + rng.Float64()*100
		}
	}
	return cycles, values
}

func genAlternating(rng *rand.Rand, n int) ([]uint64, []float64) {
	cycles, values := make([]uint64, n), make([]float64, n)
	lo, hi := float64(rng.Intn(64))/64, 10+float64(rng.Intn(64))/64
	for i := range cycles {
		cycles[i] = uint64(i+1) * 256
		if i%2 == 0 {
			values[i] = lo
		} else {
			values[i] = hi
		}
	}
	return cycles, values
}

// genAdversarial stresses the codec outside the gauge-shaped envelope:
// random cycle gaps (including zero and huge) and full-range float bit
// patterns, NaN included.
func genAdversarial(rng *rand.Rand, n int) ([]uint64, []float64) {
	cycles, values := make([]uint64, n), make([]float64, n)
	var c uint64
	for i := range cycles {
		c += rng.Uint64() >> uint(rng.Intn(64))
		cycles[i] = c
		values[i] = math.Float64frombits(rng.Uint64())
	}
	return cycles, values
}

var seriesGens = []struct {
	name string
	gen  func(*rand.Rand, int) ([]uint64, []float64)
}{
	{"steady", genSteady},
	{"seasonal", genSeasonal},
	{"bursty", genBursty},
	{"alternating", genAlternating},
	{"adversarial", genAdversarial},
}

// TestPropSeriesRoundTrip: every generated series decodes bit-exactly
// (NaNs compared by bit pattern).
func TestPropSeriesRoundTrip(t *testing.T) {
	for _, g := range seriesGens {
		t.Run(g.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 50; trial++ {
				n := rng.Intn(400)
				cycles, values := g.gen(rng, n)
				blob := encodeSeriesBlob(cycles, values)
				gotC, gotV, err := decodeSeriesBlob(blob)
				if err != nil {
					t.Fatalf("trial %d (n=%d): %v", trial, n, err)
				}
				if n == 0 {
					if gotC != nil || gotV != nil {
						t.Fatalf("trial %d: empty series decoded non-empty", trial)
					}
					continue
				}
				if !reflect.DeepEqual(gotC, cycles) {
					t.Fatalf("trial %d: cycles differ", trial)
				}
				for i := range values {
					if math.Float64bits(gotV[i]) != math.Float64bits(values[i]) {
						t.Fatalf("trial %d point %d: %x != %x",
							trial, i, math.Float64bits(gotV[i]), math.Float64bits(values[i]))
					}
				}
			}
		})
	}
}

// TestPropSeriesCompression: gauge-shaped series must actually compress —
// the whole point of delta-of-delta + XOR. Steady and alternating shapes
// sit far below the raw 16 bytes/point; a regression here means the codec
// quietly degraded to storing raw values.
func TestPropSeriesCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	limits := map[string]float64{"steady": 0.25, "alternating": 0.50, "bursty": 0.75}
	for _, gen := range seriesGens {
		limit, ok := limits[gen.name]
		if !ok {
			continue
		}
		cycles, values := gen.gen(rng, 1000)
		blob := encodeSeriesBlob(cycles, values)
		raw := len(cycles) * 16
		if ratio := float64(len(blob)) / float64(raw); ratio > limit {
			t.Errorf("%s: %d points encode to %d bytes (%.0f%% of raw %d); want ≤%.0f%%",
				gen.name, len(cycles), len(blob), ratio*100, raw, limit*100)
		}
	}
}

// randCell builds a random cell over a small tag universe with a random
// subset of metric columns.
func randCell(rng *rand.Rand) Cell {
	c := Cell{
		Workload: fmt.Sprintf("w%d", rng.Intn(3)),
		Design:   fmt.Sprintf("d%d", rng.Intn(3)),
		Mode:     []string{"fixed", "variable"}[rng.Intn(2)],
		Cores:    1 + rng.Intn(32),
		Warm:     uint64(rng.Intn(1_000_000)),
		Measure:  uint64(rng.Intn(1_000_000)),
		Seed:     rng.Int63n(1000) - 500,
		Metrics:  map[string]uint64{},
	}
	for _, name := range []string{"m.Cycles", "m.Retired", "m.DemandMisses", "llc.InstHits", "noc.flits"} {
		if rng.Intn(4) > 0 {
			c.Metrics[name] = rng.Uint64() >> uint(rng.Intn(40))
		}
	}
	if rng.Intn(2) == 0 {
		nb := 1 + rng.Intn(8)
		h := Hist{Name: fmt.Sprintf("h%d", rng.Intn(2)), N: rng.Uint64() >> 40,
			Sum: rng.Uint64() >> 30, Min: uint64(rng.Intn(100)), Max: uint64(rng.Intn(1000))}
		for b := 0; b < nb; b++ {
			h.Bounds = append(h.Bounds, rng.Uint64()>>uint(30+rng.Intn(30)))
			h.Counts = append(h.Counts, uint64(rng.Intn(1000)))
		}
		h.Counts = append(h.Counts, uint64(rng.Intn(1000)))
		c.Hists = append(c.Hists, h)
	}
	if rng.Intn(2) == 0 {
		g := seriesGens[rng.Intn(len(seriesGens))]
		cy, va := g.gen(rng, rng.Intn(64))
		c.Series = append(c.Series, Series{Name: "series." + g.name, Cycles: cy, Values: va})
	}
	return c
}

// TestPropSegmentRoundTrip: random cell batches round-trip exactly through
// a full segment.
func TestPropSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		cells := make([]Cell, rng.Intn(30)+1)
		for i := range cells {
			cells[i] = randCell(rng)
		}
		// Duplicate keys are legal at the segment layer (the Writer dedups);
		// keep them to exercise repeated tags.
		got, err := decodeSegment(encodeSegment(cells), CellOptions{WithHists: true, WithSeries: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(cells) {
			t.Fatalf("trial %d: %d cells, want %d", trial, len(got), len(cells))
		}
		for i := range cells {
			want := cells[i]
			if len(want.Metrics) == 0 {
				want.Metrics = map[string]uint64{}
			}
			if !cellDeepEqual(got[i], want) {
				t.Fatalf("trial %d cell %d:\ngot  %+v\nwant %+v", trial, i, got[i], want)
			}
		}
	}
}

// cellDeepEqual compares cells with NaN-tolerant series values.
func cellDeepEqual(a, b Cell) bool {
	sa, sb := a.Series, b.Series
	a.Series, b.Series = nil, nil
	if !reflect.DeepEqual(a, b) {
		return false
	}
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		// nil and empty are the same series (a zero-point blob decodes to
		// nil slices).
		if sa[i].Name != sb[i].Name || len(sa[i].Cycles) != len(sb[i].Cycles) ||
			len(sa[i].Values) != len(sb[i].Values) {
			return false
		}
		for j := range sa[i].Cycles {
			if sa[i].Cycles[j] != sb[i].Cycles[j] {
				return false
			}
		}
		for j := range sa[i].Values {
			if math.Float64bits(sa[i].Values[j]) != math.Float64bits(sb[i].Values[j]) {
				return false
			}
		}
	}
	return true
}

// TestPropDictionaryPermutationInvariance: the dictionary is sorted, so
// reordering which cells introduce which tags must not change the
// segment's dictionary bytes — and re-encoding a decoded segment must be
// byte-identical (canonical encoding).
func TestPropDictionaryPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		cells := make([]Cell, 12)
		for i := range cells {
			cells[i] = randCell(rng)
		}
		perm := rng.Perm(len(cells))
		permuted := make([]Cell, len(cells))
		for i, p := range perm {
			permuted[i] = cells[p]
		}
		// Same cell *set*, different order: the dictionaries must be
		// identical even though the column bytes differ.
		dictA := segmentDict(t, encodeSegment(cells))
		dictB := segmentDict(t, encodeSegment(permuted))
		if !reflect.DeepEqual(dictA, dictB) {
			t.Fatalf("trial %d: dictionary depends on cell order:\n%v\n%v", trial, dictA, dictB)
		}

		// Canonical re-encode: decode → encode reproduces the exact bytes.
		payload := encodeSegment(cells)
		decoded, err := decodeSegment(payload, CellOptions{WithHists: true, WithSeries: true})
		if err != nil {
			t.Fatal(err)
		}
		if re := encodeSegment(decoded); !reflect.DeepEqual(re, payload) {
			t.Fatalf("trial %d: re-encoding a decoded segment changed the bytes", trial)
		}
	}
}

// segmentDict decodes just the dictionary off the front of a segment.
func segmentDict(t *testing.T, payload []byte) []string {
	t.Helper()
	r := &byteReader{buf: payload}
	n := r.count(1)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := r.uvarint()
		out = append(out, string(r.take(int(l))))
	}
	if r.err != nil {
		t.Fatal(r.err)
	}
	return out
}

// TestPropScanMatchesNaiveReference: Scan's grouped aggregates must equal
// a naive reference that re-reads every cell and reduces with the same
// float operations in the same order.
func TestPropScanMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		cells := make([]Cell, rng.Intn(40)+5)
		for i := range cells {
			cells[i] = randCell(rng)
			cells[i].Metrics["m.Cycles"] = uint64(rng.Intn(1000) + 1)
			cells[i].Metrics["m.Retired"] = uint64(rng.Intn(10000))
		}
		r, err := NewReader(Marshal(cells))
		if err != nil {
			t.Fatal(err)
		}
		q := Query{Metric: MetricIPC}
		if rng.Intn(2) == 0 {
			q.Workloads = []string{"w0", "w2"}
		}
		if rng.Intn(2) == 0 {
			q.Seeds = []int64{cells[0].Seed, cells[1].Seed}
		}
		got, err := Scan(r, q)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveScan(cells, q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d:\nscan  %+v\nnaive %+v", trial, got, want)
		}
	}
}

// naiveScan is the reference model: straight loops over the decoded cells,
// same float path as Scan.
func naiveScan(cells []Cell, q Query) []Group {
	type key struct{ w, d string }
	vals := map[key][]float64{}
	var order []key
	for i := range cells {
		c := &cells[i]
		if !matchStr(q.Workloads, c.Workload) || !matchStr(q.Designs, c.Design) {
			continue
		}
		seedOK := len(q.Seeds) == 0
		for _, s := range q.Seeds {
			seedOK = seedOK || s == c.Seed
		}
		if !seedOK {
			continue
		}
		v, _ := cellMetric(c, q.Metric)
		k := key{c.Workload, c.Design}
		if _, seen := vals[k]; !seen {
			order = append(order, k)
		}
		vals[k] = append(vals[k], v)
	}
	var out []Group
	for _, k := range order {
		vs := vals[k]
		g := Group{Workload: k.w, Design: k.d, N: len(vs), Min: vs[0], Max: vs[0]}
		var sum float64
		for _, v := range vs {
			sum += v
			if v < g.Min {
				g.Min = v
			}
			if v > g.Max {
				g.Max = v
			}
		}
		g.Mean = sum / float64(g.N)
		if g.N > 1 {
			var ss float64
			for _, v := range vs {
				d := v - g.Mean
				ss += d * d
			}
			g.CI95 = 1.96 * math.Sqrt(ss/float64(g.N-1)) / math.Sqrt(float64(g.N))
		}
		out = append(out, g)
	}
	sortGroups(out)
	if out == nil {
		out = []Group{}
	}
	return out
}

func sortGroups(gs []Group) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0; j-- {
			a, b := &gs[j-1], &gs[j]
			if a.Workload < b.Workload || (a.Workload == b.Workload && a.Design <= b.Design) {
				break
			}
			gs[j-1], gs[j] = gs[j], gs[j-1]
		}
	}
}
