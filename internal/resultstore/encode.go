package resultstore

import (
	"encoding/binary"
	"hash/crc32"
	"sort"
)

// zigzag maps signed deltas onto small unsigned varints (0, -1, 1, -2, …).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendZvarint(dst []byte, v int64) []byte { return binary.AppendUvarint(dst, zigzag(v)) }

// appendBlock frames a payload as one store block: kind, length, payload,
// CRC32 over all three. Blocks are the unit of torn-tail detection.
func appendBlock(dst []byte, kind uint8, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// appendHeader writes the file header.
func appendHeader(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	return binary.LittleEndian.AppendUint16(dst, 0) // flags
}

// encodeSegment encodes a batch of cells as one segment payload. The
// encoding is canonical — dictionary and metric columns are sorted — so the
// same cells in the same order always produce identical bytes.
func encodeSegment(cells []Cell) []byte {
	// Dictionary: every string the segment references, sorted. Sorting makes
	// the dictionary (and the indices derived from it) independent of the
	// order tags were first seen.
	seen := map[string]bool{}
	for i := range cells {
		c := &cells[i]
		seen[c.Workload], seen[c.Design], seen[c.Mode] = true, true, true
		for name := range c.Metrics {
			seen[name] = true
		}
		for _, h := range c.Hists {
			seen[h.Name] = true
		}
		for _, s := range c.Series {
			seen[s.Name] = true
		}
	}
	dict := make([]string, 0, len(seen))
	for s := range seen {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	idx := make(map[string]uint64, len(dict))
	for i, s := range dict {
		idx[s] = uint64(i)
	}

	out := appendUvarint(nil, uint64(len(dict)))
	for _, s := range dict {
		out = appendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = appendUvarint(out, uint64(len(cells)))

	// Identity columns, one value per cell.
	for i := range cells {
		out = appendUvarint(out, idx[cells[i].Workload])
	}
	for i := range cells {
		out = appendUvarint(out, idx[cells[i].Design])
	}
	for i := range cells {
		out = appendUvarint(out, idx[cells[i].Mode])
	}
	for i := range cells {
		out = appendUvarint(out, uint64(cells[i].Cores))
	}
	for i := range cells {
		out = appendUvarint(out, cells[i].Warm)
	}
	for i := range cells {
		out = appendUvarint(out, cells[i].Measure)
	}
	for i := range cells {
		out = appendZvarint(out, cells[i].Seed)
	}

	// Metric columns: sorted union of names; per metric a presence bitmap
	// and, for present cells, the zigzag delta from the previous present
	// cell's value. Deltas use uint64 wraparound, so the round trip is exact
	// for any values while similar cells compress to a byte or two per
	// counter.
	names := map[string]bool{}
	for i := range cells {
		for n := range cells[i].Metrics {
			names[n] = true
		}
	}
	cols := make([]string, 0, len(names))
	for n := range names {
		cols = append(cols, n)
	}
	sort.Strings(cols)

	metrics := appendUvarint(nil, uint64(len(cols)))
	bitmap := make([]byte, (len(cells)+7)/8)
	for _, name := range cols {
		metrics = appendUvarint(metrics, idx[name])
		for i := range bitmap {
			bitmap[i] = 0
		}
		for i := range cells {
			if _, ok := cells[i].Metrics[name]; ok {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		metrics = append(metrics, bitmap...)
		var prev uint64
		for i := range cells {
			v, ok := cells[i].Metrics[name]
			if !ok {
				continue
			}
			metrics = appendZvarint(metrics, int64(v-prev))
			prev = v
		}
	}
	out = appendUvarint(out, uint64(len(metrics)))
	out = append(out, metrics...)

	// Histogram section, row-wise per cell (histograms are few and small;
	// rows keep the encoder simple and the section skippable).
	var hists []byte
	for i := range cells {
		hists = appendUvarint(hists, uint64(len(cells[i].Hists)))
		for _, h := range cells[i].Hists {
			hists = appendUvarint(hists, idx[h.Name])
			hists = appendUvarint(hists, uint64(len(h.Bounds)))
			prev := int64(0)
			for _, b := range h.Bounds {
				hists = appendZvarint(hists, int64(b)-prev)
				prev = int64(b)
			}
			hists = appendUvarint(hists, uint64(len(h.Counts)))
			for _, c := range h.Counts {
				hists = appendUvarint(hists, c)
			}
			hists = appendUvarint(hists, h.N)
			hists = appendUvarint(hists, h.Sum)
			hists = appendUvarint(hists, h.Min)
			hists = appendUvarint(hists, h.Max)
		}
	}
	out = appendUvarint(out, uint64(len(hists)))
	out = append(out, hists...)

	// Series section: per cell, each series as a length-prefixed blob of the
	// standalone codec, so a reader can skip any series without bit-level
	// decoding.
	var series []byte
	for i := range cells {
		series = appendUvarint(series, uint64(len(cells[i].Series)))
		for _, s := range cells[i].Series {
			blob := encodeSeriesBlob(s.Cycles, s.Values)
			series = appendUvarint(series, idx[s.Name])
			series = appendUvarint(series, uint64(len(blob)))
			series = append(series, blob...)
		}
	}
	out = appendUvarint(out, uint64(len(series)))
	out = append(out, series...)
	return out
}
