package resultstore

import (
	"fmt"
	"io"
	"os"
)

// DefaultSegmentCells is how many appended cells the Writer batches into
// one segment block before flushing. Bigger segments compress better (one
// dictionary, longer delta runs) but widen the window a crash can lose;
// the default keeps a killed sweep's loss to at most one batch, and Flush
// or Close seal whatever is pending.
const DefaultSegmentCells = 256

// Writer appends cells to a store file. Appends are batched into segment
// blocks; each flushed block is fsynced, so once Flush returns the cells
// in it survive any crash. Reopening an existing store validates every
// block and truncates a torn tail (a block half-written when the process
// died) — the preceding, checksummed blocks are untouched, which is the
// store's crash-recovery contract.
//
// The Writer also tracks every cell key already in the file, so an
// at-least-once producer (the dncserved admission path, a resumed sweep)
// can make appends idempotent with Has.
type Writer struct {
	f        *os.File
	pending  []Cell
	keys     map[string]bool
	perSeg   int
	writeErr error
}

// OpenWriter opens path for appending, creating it (with a fresh header)
// if absent. An existing file is validated block by block: a torn or
// corrupt tail is truncated away and its cells' keys forgotten, so they
// re-append cleanly.
func OpenWriter(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: opening %s: %w", path, err)
	}
	w := &Writer{f: f, keys: make(map[string]bool), perSeg: DefaultSegmentCells}
	if err := w.recover(path); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("resultstore: seeking to end of %s: %w", path, err)
	}
	return w, nil
}

// recover validates the existing file, records its cell keys, and
// truncates everything after the last valid block.
func (w *Writer) recover(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("resultstore: reading %s: %w", path, err)
	}
	if len(data) == 0 {
		if _, err := w.f.Write(appendHeader(nil)); err != nil {
			return fmt.Errorf("resultstore: writing header: %w", err)
		}
		return w.sync()
	}
	off, err := checkHeader(data)
	if err != nil {
		// A file too short to hold a header is a crash inside the very
		// first write; start it over. A wrong magic or version is a real
		// error — truncating someone else's file would destroy data.
		if len(data) < headerSize {
			if err := w.f.Truncate(0); err != nil {
				return fmt.Errorf("resultstore: truncating %s: %w", path, err)
			}
			if _, err := w.f.WriteAt(appendHeader(nil), 0); err != nil {
				return fmt.Errorf("resultstore: writing header: %w", err)
			}
			return w.sync()
		}
		return err
	}
	valid := off
	for off < len(data) {
		kind, payload, next, err := nextBlock(data, off)
		if err != nil {
			break // torn tail: keep everything before it
		}
		if kind == blockSegment {
			cells, err := decodeSegment(payload, CellOptions{})
			if err != nil {
				break
			}
			for i := range cells {
				w.keys[cells[i].Key()] = true
			}
		}
		valid, off = next, next
	}
	if valid < len(data) {
		if err := w.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("resultstore: truncating torn tail of %s: %w", path, err)
		}
		return w.sync()
	}
	return nil
}

// Has reports whether a cell with this key is already durable in the file
// or pending in the current batch.
func (w *Writer) Has(key string) bool { return w.keys[key] }

// Len reports how many cells the file plus the pending batch hold.
func (w *Writer) Len() int { return len(w.keys) }

// Append adds one cell, flushing a full batch. Duplicate keys are dropped
// (first insert wins, matching the service cache's admission rule); the
// return reports whether the cell was accepted.
func (w *Writer) Append(c Cell) (bool, error) {
	if w.writeErr != nil {
		return false, w.writeErr
	}
	key := c.Key()
	if w.keys[key] {
		return false, nil
	}
	w.keys[key] = true
	w.pending = append(w.pending, c)
	if len(w.pending) >= w.perSeg {
		return true, w.Flush()
	}
	return true, nil
}

// Flush seals the pending batch into one fsynced segment block. A write
// failure is sticky: the Writer refuses further appends, because a partial
// block in the middle of the file would orphan everything after it.
func (w *Writer) Flush() error {
	if w.writeErr != nil {
		return w.writeErr
	}
	if len(w.pending) == 0 {
		return nil
	}
	block := appendBlock(nil, blockSegment, encodeSegment(w.pending))
	if _, err := w.f.Write(block); err != nil {
		w.writeErr = fmt.Errorf("resultstore: appending segment: %w", err)
		return w.writeErr
	}
	if err := w.sync(); err != nil {
		w.writeErr = err
		return w.writeErr
	}
	w.pending = w.pending[:0]
	return nil
}

func (w *Writer) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("resultstore: fsync: %w", err)
	}
	return nil
}

// Close flushes the pending batch and closes the file.
func (w *Writer) Close() error {
	flushErr := w.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if closeErr != nil {
		return fmt.Errorf("resultstore: closing store: %w", closeErr)
	}
	return nil
}

// Marshal encodes cells as one complete in-memory store (header plus a
// single segment block) — the building block for compaction, export, and
// the golden fixtures.
func Marshal(cells []Cell) []byte {
	return appendBlock(appendHeader(nil), blockSegment, encodeSegment(cells))
}

// Verify re-validates a marshalled store without decoding cell values:
// header framing plus every block's length and CRC32. It returns the
// number of valid blocks. This is `dncstore verify` — the cheap integrity
// sweep an operator runs against a store on disk.
func Verify(data []byte) (blocks int, err error) {
	off, err := checkHeader(data)
	if err != nil {
		return 0, err
	}
	for off < len(data) {
		_, _, next, err := nextBlock(data, off)
		if err != nil {
			return blocks, err
		}
		blocks++
		off = next
	}
	return blocks, nil
}

// blockSizes returns the framed size of every block (diagnostics for
// `dncstore info`).
func blockSizes(data []byte) []int {
	off, err := checkHeader(data)
	if err != nil {
		return nil
	}
	var sizes []int
	for off < len(data) {
		_, _, next, err := nextBlock(data, off)
		if err != nil {
			return sizes
		}
		sizes = append(sizes, next-off)
		off = next
	}
	return sizes
}
