package resultstore

import (
	"reflect"
	"testing"

	"dnc/internal/core"
	"dnc/internal/llc"
	"dnc/internal/obs"
	"dnc/internal/sim/runner"
	"dnc/internal/stats"
)

// TestSetResultCoversEveryCounter: every uint64 field of core.Metrics and
// llc.Stats must surface as a store column — by reflection, so a counter
// added to either struct is stored from the commit that adds it.
func TestSetResultCoversEveryCounter(t *testing.T) {
	r := &runner.ResultJSON{Workload: "w", Design: "d"}
	// Poison every counter with a distinct value via reflection.
	fill := func(v reflect.Value, base uint64) {
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).Kind() == reflect.Uint64 {
				v.Field(i).SetUint(base + uint64(i))
			}
		}
	}
	fill(reflect.ValueOf(&r.M).Elem(), 1000)
	fill(reflect.ValueOf(&r.LLCStats).Elem(), 2000)
	r.NoCFlits, r.NoCQueued, r.DRAMQueued, r.StorageBits = 31, 32, 33, 34

	var c Cell
	c.SetResult(r)

	mt := reflect.TypeOf(core.Metrics{})
	for i := 0; i < mt.NumField(); i++ {
		name := "m." + mt.Field(i).Name
		if got, ok := c.Metrics[name]; !ok || got != 1000+uint64(i) {
			t.Errorf("metric %s = (%d, %v), want %d", name, got, ok, 1000+i)
		}
	}
	lt := reflect.TypeOf(llc.Stats{})
	for i := 0; i < lt.NumField(); i++ {
		name := "llc." + lt.Field(i).Name
		if got, ok := c.Metrics[name]; !ok || got != 2000+uint64(i) {
			t.Errorf("metric %s = (%d, %v), want %d", name, got, ok, 2000+i)
		}
	}
	for name, want := range map[string]uint64{
		"noc.flits": 31, "noc.queued": 32, "dram.queued": 33, "storage.bits": 34,
	} {
		if got := c.Metrics[name]; got != want {
			t.Errorf("metric %s = %d, want %d", name, got, want)
		}
	}
}

// TestSetResultObs: registry counters, histograms, and series all carry
// over; a result without Obs stores scalars only.
func TestSetResultObs(t *testing.T) {
	r := &runner.ResultJSON{
		Obs: &obs.RunObs{
			Counters: []stats.CounterValue{{Name: "mshr.highwater.core0", Value: 7}},
			Hists: []obs.HistSnapshot{{
				Name: "occ.rob", Bounds: []uint64{8, 16}, Counts: []uint64{1, 2, 3},
				N: 6, Sum: 60, Min: 4, Max: 30,
			}},
			Series: []obs.SeriesSnapshot{{
				Name: "series.ipc", Cycles: []uint64{256, 512}, Values: []float64{1.5, 1.25},
			}},
		},
	}
	var c Cell
	c.SetResult(r)
	if c.Metrics["ctr.mshr.highwater.core0"] != 7 {
		t.Errorf("counter column = %d, want 7", c.Metrics["ctr.mshr.highwater.core0"])
	}
	wantH := []Hist{{Name: "occ.rob", Bounds: []uint64{8, 16}, Counts: []uint64{1, 2, 3},
		N: 6, Sum: 60, Min: 4, Max: 30}}
	if !reflect.DeepEqual(c.Hists, wantH) {
		t.Errorf("Hists = %+v, want %+v", c.Hists, wantH)
	}
	wantS := []Series{{Name: "series.ipc", Cycles: []uint64{256, 512}, Values: []float64{1.5, 1.25}}}
	if !reflect.DeepEqual(c.Series, wantS) {
		t.Errorf("Series = %+v, want %+v", c.Series, wantS)
	}

	// SetResult replaces prior state (a Cell can be reused for conversion).
	c.SetResult(&runner.ResultJSON{})
	if len(c.Hists) != 0 || len(c.Series) != 0 {
		t.Error("SetResult did not clear previous hists/series")
	}
	// And the converted cell round-trips through the store.
	c.Workload, c.Design, c.Mode, c.Cores = "w", "d", "fixed", 1
	got, err := decodeSegment(encodeSegment([]Cell{c}), CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0].Metrics, c.Metrics) {
		t.Error("converted cell metrics did not round-trip")
	}
}
