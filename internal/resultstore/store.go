// Package resultstore implements the columnar, checksummed binary store for
// sweep results and sampled metric time-series (ROADMAP item 2).
//
// A store file is the durable, queryable form of a sweep: one row ("cell")
// per simulated design × workload × seed point, holding the cell's identity
// tags, its scalar metric counters, its histograms, and — when the run was
// captured with obs.Config.Series — its sampled gauge time-series. The
// point of the format is that cross-sweep aggregate questions ("mean IPC and
// CI for every design × workload") are answered by scanning the file, never
// by re-simulation.
//
// # File layout
//
//	header  magic u32 "DNCR" | version u16 | flags u16
//	blocks  kind u8 | payloadLen u32 | payload | crc32 u32
//
// The CRC32 (IEEE) covers kind, length, and payload, so every block is
// independently verifiable and an append interrupted by a crash leaves a
// torn tail that checksum validation detects; the Writer truncates it on
// reopen and the admitted cells before it survive untouched (the
// checkpoint-package idiom, applied to an append-only multi-block file).
//
// # Segment payload (block kind 1)
//
// Cells are batched into segments. A segment is columnar:
//
//	dict     uvarint count, then count × (uvarint len | bytes), sorted
//	ncells   uvarint
//	id columns (one value per cell, in cell order):
//	  workload/design/mode  dictionary indices, uvarint
//	  cores/warm/measure    uvarint
//	  seed                  zigzag varint
//	metrics section  u32 byte length, then per metric (sorted by name):
//	  name index uvarint | presence bitmap | per present cell the
//	  zigzag varint delta from the previous present cell's value
//	hists section    u32 byte length, then per cell, row-wise:
//	  count, then per histogram: name index, bounds (first absolute,
//	  then zigzag deltas), counts, n/sum/min/max — all varint-packed
//	series section   u32 byte length, then per cell:
//	  count, then per series: name index | u32 blob length | blob,
//	  where the blob is the standalone series codec (see series.go):
//	  delta-of-delta timestamps + Gorilla XOR values
//
// The dictionary is sorted and metric names are sorted, so the encoding is
// canonical: the same cells in the same order produce identical bytes
// regardless of construction order (the byte-stability golden test pins
// this). The three length-prefixed sections let a scalar-only scan skip
// histogram and series bytes entirely, and a dictionary that matches no
// query tag lets the reader skip the whole segment without decoding a
// single column ("predicate push-down").
//
// Decoding is defensive in the checkpoint-package style: every read is
// bounds-checked, every count and length is validated against the remaining
// input before allocation, and malformed input yields a typed error
// (ErrTruncated, ErrCorrupt, ErrVersion, ErrChecksum) — never a panic. Two
// fuzz targets (FuzzBlockDecode, FuzzSeriesDecode) keep it that way.
package resultstore

import (
	"errors"
	"fmt"
)

// Format constants.
const (
	// Magic identifies a result-store file ("DNCR" little-endian).
	Magic uint32 = 0x52434E44
	// Version is the current format version. v1 is pinned readable forever
	// by the golden cross-version test; any layout change bumps this and
	// adds a decode path, it never rewrites v1.
	Version uint16 = 1

	// headerSize is magic + version + flags.
	headerSize = 8
	// blockOverhead is kind + payload length + CRC32 trailer.
	blockOverhead = 9

	// blockSegment holds a batch of cells in columnar form.
	blockSegment uint8 = 1
)

// Typed decode errors; every decoder failure wraps one of these.
var (
	// ErrTruncated means the input ended before a read completed (including
	// a torn tail block from a crashed append).
	ErrTruncated = errors.New("resultstore: truncated input")
	// ErrCorrupt means structurally invalid input: bad magic, impossible
	// count, dictionary index out of range, non-canonical bitstream.
	ErrCorrupt = errors.New("resultstore: corrupt input")
	// ErrVersion means the file was written by an unsupported format version.
	ErrVersion = errors.New("resultstore: unsupported version")
	// ErrChecksum means a block's CRC32 does not match its content.
	ErrChecksum = errors.New("resultstore: checksum mismatch")
)

// Cell is one sweep point: identity tags plus everything measured. It is
// the row type of the store — Writer.Append takes it, Reader.Cells returns
// it.
type Cell struct {
	Workload string
	Design   string
	Mode     string // "fixed" | "variable" (isa dispatch mode)
	Cores    int
	Warm     uint64 // warm-up cycles
	Measure  uint64 // measurement-window cycles
	Seed     int64

	// Metrics holds the scalar counters as named columns ("m.Retired",
	// "llc.InstHits", "noc.flits", "ctr.<counter>", …; see convert.go for
	// the full naming scheme).
	Metrics map[string]uint64
	// Hists holds the run's histogram snapshots, in the cell's own order.
	Hists []Hist
	// Series holds the sampled gauge time-series, in the cell's own order.
	Series []Series
}

// Hist is a stored histogram: the obs.HistSnapshot shape, owned by this
// package so the wire format cannot drift when obs evolves.
type Hist struct {
	Name   string
	Bounds []uint64
	Counts []uint64
	N      uint64
	Sum    uint64
	Min    uint64
	Max    uint64
}

// Series is a stored time-series: parallel (cycle, value) points on the
// sampling cadence.
type Series struct {
	Name   string
	Cycles []uint64
	Values []float64
}

// Key is the cell's canonical identity, byte-identical to the dncserved
// cache key (workerproto.CellSpec.Key) so the service can correlate store
// rows with cache entries without re-deriving anything.
func (c *Cell) Key() string {
	return fmt.Sprintf("v1|w=%s|d=%s|m=%s|c=%d|warm=%d|meas=%d|seed=%d",
		c.Workload, c.Design, c.Mode, c.Cores, c.Warm, c.Measure, c.Seed)
}
