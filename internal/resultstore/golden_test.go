package resultstore

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden store fixtures")

// goldenCells is the fixed fixture sweep: 2 designs × 2 workloads × 2
// seeds with hand-written metrics, one histogram, and two series each.
// Everything is a literal — goldens must not depend on the simulator.
func goldenCells() []Cell {
	var cells []Cell
	for wi, w := range []string{"flat-loops", "mixed-branchy"} {
		for di, d := range []string{"baseline", "confluence"} {
			for s := 0; s < 2; s++ {
				i := uint64(wi*4 + di*2 + s)
				cells = append(cells, Cell{
					Workload: w, Design: d, Mode: "fixed", Cores: 4,
					Warm: 50_000, Measure: 40_000, Seed: int64(1 + s*7919),
					Metrics: map[string]uint64{
						"m.Cycles":                 160_000,
						"m.Retired":                201_500 + i*333,
						"m.DemandMisses":           8_000 - i*17,
						"m.StallICache":            12_345 + i,
						"llc.InstHits":             44_000 + i*5,
						"noc.flits":                1_000_000 + i,
						"dram.queued":              77 + i,
						"storage.bits":             393_216,
						"ctr.mshr.highwater.core0": 12 + i,
					},
					Hists: []Hist{{
						Name:   "lat.l1i.demand",
						Bounds: []uint64{8, 12, 18, 27, 40},
						Counts: []uint64{100 + i, 220, 85, 30, 9, 2},
						N:      446 + i, Sum: 6_240 + i*11, Min: 9, Max: 52,
					}},
					Series: []Series{
						{
							Name:   "series.ipc",
							Cycles: []uint64{50_176, 50_432, 50_688, 50_944},
							Values: []float64{1.25, 1.25, 1.1875 + float64(i)/64, 1.3125},
						},
						{
							Name:   "series.occ.rob",
							Cycles: []uint64{50_176, 50_432, 50_688, 50_944},
							Values: []float64{96.5, 96.5, 98, 64 + float64(i)},
						},
					},
				})
			}
		}
	}
	return cells
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func writeOrCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoder output changed (%d bytes, golden %d).\n"+
			"The store is a durable wire format: if this change is intentional it is a\n"+
			"format revision — bump Version, keep the v1 decode path, and regenerate\n"+
			"with -update. Silent byte drift breaks every store already on disk.",
			name, len(got), len(want))
	}
}

// TestGoldenByteStability: encoding the fixture cells must reproduce the
// committed v1 bytes exactly — same input, identical bytes, forever.
func TestGoldenByteStability(t *testing.T) {
	writeOrCompare(t, "v1_basic.dncr", Marshal(goldenCells()))
}

// TestGoldenSeriesBlobStability pins the standalone series codec bytes.
func TestGoldenSeriesBlobStability(t *testing.T) {
	cycles := []uint64{256, 512, 768, 1024, 1280, 1536}
	values := []float64{1.5, 1.5, 1.25, 1.25, 1.75, 0.5}
	writeOrCompare(t, "v1_series.blob", encodeSeriesBlob(cycles, values))
}

// TestGoldenV1Decode: the committed v1 fixture must decode to the exact
// fixture cells on every future build — v1 stays readable forever. This
// test must never be "fixed" by regenerating the fixture: a failure means
// a decoder change broke compatibility with stores already on disk.
func TestGoldenV1Decode(t *testing.T) {
	data, err := os.ReadFile(goldenPath("v1_basic.dncr"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	got, err := r.Cells(CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	cellsEqual(t, got, goldenCells())

	// Push-down and aggregation answers over the v1 fixture are pinned too.
	groups, err := Scan(r, Query{Metric: MetricIPC, Designs: []string{"confluence"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].N != 2 || groups[0].Design != "confluence" {
		t.Fatalf("v1 scan = %+v", groups)
	}
}

// TestGoldenRegressionCorpus replays every store file in
// testdata/regression/ through the full decoder. The corpus accumulates
// one file per decoder bug ever found (fuzz crashers, field reports); each
// must keep decoding without panic and with a typed error at worst.
func TestGoldenRegressionCorpus(t *testing.T) {
	dir := goldenPath("regression")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("missing regression corpus dir: %v", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) == ".md" {
			continue
		}
		n++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			// Must not panic; errors must be typed (checked by the same
			// predicate the fuzzer uses).
			if _, err := decodeAll(data, CellOptions{WithHists: true, WithSeries: true}); err != nil {
				assertTypedError(t, err)
			}
			if _, _, err := decodeSeriesBlob(data); err != nil {
				assertTypedError(t, err)
			}
		})
	}
	if n == 0 {
		t.Fatal("regression corpus is empty — the seed crasher file is missing")
	}
}

func assertTypedError(t *testing.T, err error) {
	t.Helper()
	for _, typed := range []error{ErrTruncated, ErrCorrupt, ErrVersion, ErrChecksum} {
		if errors.Is(err, typed) {
			return
		}
	}
	t.Fatalf("untyped decode error: %v", err)
}
