package resultstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// byteReader is the sticky-error varint reader behind segment decoding
// (the checkpoint.Decoder idiom, varint-flavoured). Every read is
// bounds-checked; after the first failure every read returns zero and err
// holds the typed cause.
type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *byteReader) remaining() int { return len(r.buf) - r.off }

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Uvarint(r.buf[r.off:])
	if w <= 0 {
		r.fail(fmt.Errorf("%w: varint at offset %d", errVarint(w), r.off))
		return 0
	}
	r.off += w
	return v
}

func (r *byteReader) zvarint() int64 { return unzigzag(r.uvarint()) }

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail(fmt.Errorf("%w: need %d bytes, %d remain", ErrTruncated, n, r.remaining()))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// count reads an element count and validates it against the remaining
// input, assuming each element occupies at least elemMin bytes — the
// allocation guard that keeps a corrupt count from forcing a huge make.
func (r *byteReader) count(elemMin int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64(r.remaining()/elemMin) {
		r.fail(fmt.Errorf("%w: element count %d exceeds remaining input", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// section reads a uvarint length prefix and returns the enclosed bytes.
func (r *byteReader) section(what string) []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail(fmt.Errorf("%w: %s section of %d bytes, %d remain", ErrTruncated, what, n, r.remaining()))
		return nil
	}
	return r.take(int(n))
}

// CellOptions selects what Cells decodes and which cells it returns.
// Filters are disjunctive within a field and conjunctive across fields
// (workload ∈ Workloads AND design ∈ Designs AND seed ∈ Seeds); a nil
// slice means "any". Filtering happens before value decoding: a segment
// whose dictionary holds none of the requested tags is skipped whole, and
// the histogram/series sections are skipped as byte ranges unless asked
// for.
type CellOptions struct {
	Workloads []string
	Designs   []string
	Seeds     []int64
	// WithHists and WithSeries opt in to decoding the heavy sections.
	WithHists  bool
	WithSeries bool
}

func (o *CellOptions) wantWorkload(w string) bool { return matchStr(o.Workloads, w) }
func (o *CellOptions) wantDesign(d string) bool   { return matchStr(o.Designs, d) }

func (o *CellOptions) wantSeed(s int64) bool {
	if len(o.Seeds) == 0 {
		return true
	}
	for _, v := range o.Seeds {
		if v == s {
			return true
		}
	}
	return false
}

func matchStr(set []string, v string) bool {
	if len(set) == 0 {
		return true
	}
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

// decodeSegment decodes one segment payload into cells, honouring the
// options' filters and section selection.
func decodeSegment(payload []byte, opt CellOptions) ([]Cell, error) {
	r := &byteReader{buf: payload}

	nd := r.count(1)
	dict := make([]string, 0, nd)
	for i := 0; i < nd; i++ {
		n := r.uvarint()
		if r.err == nil && n > uint64(r.remaining()) {
			r.fail(fmt.Errorf("%w: dictionary string of %d bytes, %d remain", ErrTruncated, n, r.remaining()))
		}
		dict = append(dict, string(r.take(int(n))))
	}
	if r.err != nil {
		return nil, r.err
	}
	str := func(idx uint64, what string) string {
		if r.err != nil {
			return ""
		}
		if idx >= uint64(len(dict)) {
			r.fail(fmt.Errorf("%w: %s dictionary index %d of %d", ErrCorrupt, what, idx, len(dict)))
			return ""
		}
		return dict[idx]
	}

	// Push-down on the dictionary: if no requested workload or design is in
	// it, no cell in this segment can match.
	if len(opt.Workloads) > 0 || len(opt.Designs) > 0 {
		anyW, anyD := len(opt.Workloads) == 0, len(opt.Designs) == 0
		for _, s := range dict {
			anyW = anyW || matchStr(opt.Workloads, s)
			anyD = anyD || matchStr(opt.Designs, s)
		}
		if !anyW || !anyD {
			return nil, nil
		}
	}

	// Identity columns: id columns cost ≥7 bytes per cell.
	nc := r.count(7)
	cells := make([]Cell, nc)
	for i := range cells {
		cells[i].Workload = str(r.uvarint(), "workload")
	}
	for i := range cells {
		cells[i].Design = str(r.uvarint(), "design")
	}
	for i := range cells {
		cells[i].Mode = str(r.uvarint(), "mode")
	}
	for i := range cells {
		cells[i].Cores = int(r.uvarint())
	}
	for i := range cells {
		cells[i].Warm = r.uvarint()
	}
	for i := range cells {
		cells[i].Measure = r.uvarint()
	}
	for i := range cells {
		cells[i].Seed = r.zvarint()
	}
	if r.err != nil {
		return nil, r.err
	}
	keep := make([]bool, nc)
	for i := range cells {
		keep[i] = opt.wantWorkload(cells[i].Workload) &&
			opt.wantDesign(cells[i].Design) && opt.wantSeed(cells[i].Seed)
	}

	// Metric columns. Decoding must walk every column to stay aligned, but
	// only kept cells get map entries.
	mr := &byteReader{buf: r.section("metrics")}
	if r.err != nil {
		return nil, r.err
	}
	bitmapLen := (nc + 7) / 8
	nm := mr.count(1 + bitmapLen)
	for i := range cells {
		if keep[i] {
			cells[i].Metrics = make(map[string]uint64, nm)
		}
	}
	for m := 0; m < nm; m++ {
		name := str(mr.uvarint(), "metric")
		if r.err != nil {
			return nil, r.err
		}
		bitmap := mr.take(bitmapLen)
		var prev uint64
		for i := 0; i < nc && mr.err == nil; i++ {
			if bitmap == nil || bitmap[i/8]&(1<<(i%8)) == 0 {
				continue
			}
			prev += uint64(mr.zvarint())
			if keep[i] {
				cells[i].Metrics[name] = prev
			}
		}
	}
	if mr.err != nil {
		return nil, mr.err
	}

	// Histogram section: decoded only when requested, otherwise skipped as
	// one byte range.
	hsec := r.section("hists")
	if r.err == nil && opt.WithHists {
		hr := &byteReader{buf: hsec}
		for i := 0; i < nc && hr.err == nil; i++ {
			nh := hr.count(1)
			for j := 0; j < nh && hr.err == nil; j++ {
				var h Hist
				h.Name = str(hr.uvarint(), "hist")
				if r.err != nil {
					return nil, r.err
				}
				nb := hr.count(1)
				h.Bounds = make([]uint64, nb)
				prev := int64(0)
				for k := range h.Bounds {
					prev += hr.zvarint()
					h.Bounds[k] = uint64(prev)
				}
				nct := hr.count(1)
				h.Counts = make([]uint64, nct)
				for k := range h.Counts {
					h.Counts[k] = hr.uvarint()
				}
				h.N, h.Sum = hr.uvarint(), hr.uvarint()
				h.Min, h.Max = hr.uvarint(), hr.uvarint()
				if keep[i] && hr.err == nil {
					cells[i].Hists = append(cells[i].Hists, h)
				}
			}
		}
		if hr.err != nil {
			return nil, hr.err
		}
	}

	// Series section.
	ssec := r.section("series")
	if r.err == nil && opt.WithSeries {
		sr := &byteReader{buf: ssec}
		for i := 0; i < nc && sr.err == nil; i++ {
			ns := sr.count(1)
			for j := 0; j < ns && sr.err == nil; j++ {
				name := str(sr.uvarint(), "series")
				if r.err != nil {
					return nil, r.err
				}
				blob := sr.section("series blob")
				if sr.err != nil {
					break
				}
				cyc, val, err := decodeSeriesBlob(blob)
				if err != nil {
					return nil, err
				}
				if keep[i] {
					cells[i].Series = append(cells[i].Series, Series{Name: name, Cycles: cyc, Values: val})
				}
			}
		}
		if sr.err != nil {
			return nil, sr.err
		}
	}
	if r.err != nil {
		return nil, r.err
	}

	out := cells[:0]
	for i := range cells {
		if keep[i] {
			out = append(out, cells[i])
		}
	}
	return out, nil
}

// checkHeader validates the file header, returning the offset of the first
// block.
func checkHeader(data []byte) (int, error) {
	if len(data) < headerSize {
		return 0, fmt.Errorf("%w: %d bytes is smaller than the file header", ErrTruncated, len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != Magic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return 0, fmt.Errorf("%w: store version %d, this build reads version %d", ErrVersion, v, Version)
	}
	return headerSize, nil
}

// nextBlock validates the block at data[off:] and returns its kind,
// payload, and the offset of the following block.
func nextBlock(data []byte, off int) (kind uint8, payload []byte, next int, err error) {
	if len(data)-off < blockOverhead {
		return 0, nil, 0, fmt.Errorf("%w: %d trailing bytes is smaller than a block frame", ErrTruncated, len(data)-off)
	}
	n := int(binary.LittleEndian.Uint32(data[off+1:]))
	if n > len(data)-off-blockOverhead {
		return 0, nil, 0, fmt.Errorf("%w: block of %d payload bytes, %d remain", ErrTruncated, n, len(data)-off-blockOverhead)
	}
	body := data[off : off+5+n]
	stored := binary.LittleEndian.Uint32(data[off+5+n:])
	if sum := crc32.ChecksumIEEE(body); sum != stored {
		return 0, nil, 0, fmt.Errorf("%w: block at offset %d: computed %#x, stored %#x", ErrChecksum, off, sum, stored)
	}
	return data[off], body[5:], off + 5 + n + 4, nil
}

// decodeAll decodes every cell in a marshalled store (header + blocks)
// matching the options. Strict: a torn tail or corrupt block is an error
// here; the Writer's reopen path is where torn tails are forgiven.
func decodeAll(data []byte, opt CellOptions) ([]Cell, error) {
	off, err := checkHeader(data)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for off < len(data) {
		kind, payload, next, err := nextBlock(data, off)
		if err != nil {
			return nil, err
		}
		if kind == blockSegment {
			cs, err := decodeSegment(payload, opt)
			if err != nil {
				return nil, fmt.Errorf("block at offset %d: %w", off, err)
			}
			cells = append(cells, cs...)
		}
		// Unknown block kinds are skipped: a v1 reader stays forward-
		// compatible with files that gained new auxiliary block kinds.
		off = next
	}
	return cells, nil
}
