package resultstore

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mathBits(v float64) uint64 { return math.Float64bits(v) }

// testCell builds a fully populated cell, varied by index so deltas are
// non-trivial.
func testCell(i int) Cell {
	c := Cell{
		Workload: []string{"mixed-branchy", "flat-loops"}[i%2],
		Design:   []string{"baseline", "full", "confluence"}[i%3],
		Mode:     "fixed",
		Cores:    16,
		Warm:     100_000,
		Measure:  80_000,
		Seed:     int64(1 + i*7919),
		Metrics: map[string]uint64{
			"m.Cycles":       80_000,
			"m.Retired":      uint64(120_000 + i*1000),
			"m.DemandMisses": uint64(4000 - i*100),
			"llc.InstHits":   uint64(9000 + i),
			"noc.flits":      uint64(1 << (20 + i%3)),
			"storage.bits":   65536,
		},
		Hists: []Hist{{
			Name:   "lat.l1i.demand",
			Bounds: []uint64{8, 12, 18, 27},
			Counts: []uint64{10, 20, uint64(30 + i), 5, 1},
			N:      uint64(66 + i), Sum: uint64(900 + i), Min: 9, Max: 31,
		}},
		Series: []Series{{
			Name:   "series.ipc",
			Cycles: []uint64{256, 512, 768, 1024},
			Values: []float64{1.5, 1.5, 1.25 + float64(i)*0.01, 1.75},
		}},
	}
	return c
}

func cellsEqual(t *testing.T, got, want []Cell) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("cell %d differs:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	cells := make([]Cell, 7)
	for i := range cells {
		cells[i] = testCell(i)
	}
	got, err := decodeSegment(encodeSegment(cells), CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	cellsEqual(t, got, cells)
}

func TestSegmentSectionSkipping(t *testing.T) {
	cells := []Cell{testCell(0), testCell(1)}
	got, err := decodeSegment(encodeSegment(cells), CellOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Hists != nil || got[i].Series != nil {
			t.Fatalf("cell %d decoded heavy sections without opting in", i)
		}
		if len(got[i].Metrics) != len(cells[i].Metrics) {
			t.Fatalf("cell %d metrics lost when skipping sections", i)
		}
	}
}

func TestSegmentPredicatePushdown(t *testing.T) {
	cells := make([]Cell, 6)
	for i := range cells {
		cells[i] = testCell(i)
	}
	payload := encodeSegment(cells)

	got, err := decodeSegment(payload, CellOptions{Workloads: []string{"flat-loops"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Workload != "flat-loops" {
			t.Fatalf("filter leaked workload %q", got[i].Workload)
		}
	}
	if len(got) != 3 {
		t.Fatalf("workload filter returned %d cells, want 3", len(got))
	}

	// A tag absent from the dictionary skips the segment entirely.
	got, err = decodeSegment(payload, CellOptions{Designs: []string{"no-such-design"}})
	if err != nil || got != nil {
		t.Fatalf("absent-tag scan = (%v, %v), want (nil, nil)", got, err)
	}

	got, err = decodeSegment(payload, CellOptions{Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seed != 1 {
		t.Fatalf("seed filter returned %+v", got)
	}
}

func TestMarshalReaderRoundTrip(t *testing.T) {
	cells := []Cell{testCell(0), testCell(1), testCell(2)}
	r, err := NewReader(Marshal(cells))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r.Verify(); err != nil || n != 1 {
		t.Fatalf("Verify = (%d, %v), want (1, nil)", n, err)
	}
	got, err := r.Cells(CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	cellsEqual(t, got, cells)
}

func TestWriterAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.dncr")
	w, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Cell
	for i := 0; i < 5; i++ {
		c := testCell(i)
		want = append(want, c)
		if ok, err := w.Append(c); err != nil || !ok {
			t.Fatalf("Append(%d) = (%v, %v)", i, ok, err)
		}
	}
	// Duplicate key: dropped, not an error.
	if ok, err := w.Append(testCell(0)); err != nil || ok {
		t.Fatalf("duplicate Append = (%v, %v), want (false, nil)", ok, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: existing cells are remembered, appends accumulate.
	w, err = OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Has(want[0].Key()) || w.Len() != 5 {
		t.Fatalf("reopened writer lost keys: len=%d", w.Len())
	}
	c := testCell(5)
	c.Workload = "fresh-workload"
	want = append(want, c)
	if ok, err := w.Append(c); err != nil || !ok {
		t.Fatalf("Append after reopen = (%v, %v)", ok, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Cells(CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	cellsEqual(t, got, want)
}

// TestWriterTornTailRecovery: a crash mid-append leaves a half-written
// block; the checksum detects it, reopen truncates it, and every cell
// flushed before it survives — while the torn cells' keys are forgotten so
// they can re-append.
func TestWriterTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.dncr")
	w, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	durable := []Cell{testCell(0), testCell(1)}
	for _, c := range durable {
		w.Append(c)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the torn append: a second block cut off mid-payload.
	torn := appendBlock(nil, blockSegment, encodeSegment([]Cell{testCell(2)}))
	for _, cut := range []int{1, 5, len(torn) / 2, len(torn) - 1} {
		if err := os.WriteFile(path, append(append([]byte{}, intact...), torn[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		// Strict read refuses the torn file.
		r, err := OpenReader(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Cells(CellOptions{}); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("cut %d: strict read error = %v, want truncated/checksum", cut, err)
		}

		// Writer reopen recovers: durable cells intact, torn cell gone.
		w, err := OpenWriter(path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		c2 := testCell(2)
		if w.Len() != 2 || w.Has(c2.Key()) {
			t.Fatalf("cut %d: recovered writer has %d keys", cut, w.Len())
		}
		if ok, err := w.Append(testCell(2)); err != nil || !ok {
			t.Fatalf("cut %d: re-append = (%v, %v)", cut, ok, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err = OpenReader(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Cells(CellOptions{WithHists: true, WithSeries: true})
		if err != nil {
			t.Fatalf("cut %d: read after recovery: %v", cut, err)
		}
		cellsEqual(t, got, []Cell{testCell(0), testCell(1), testCell(2)})
	}
}

// TestWriterRefusesForeignFile: recovery must never truncate a file that
// is not a result store.
func TestWriterRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notastore")
	content := []byte("precious bytes that are definitely not a store")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWriter(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenWriter on foreign file = %v, want ErrCorrupt", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatal("OpenWriter modified a foreign file")
	}
}

func TestVersionRefused(t *testing.T) {
	data := Marshal([]Cell{testCell(0)})
	data[4] = 99 // version low byte
	if _, err := NewReader(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version = %v, want ErrVersion", err)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	data := Marshal([]Cell{testCell(0), testCell(1)})
	for _, at := range []int{headerSize + 1, headerSize + 10, len(data) - 2} {
		mut := append([]byte{}, data...)
		mut[at] ^= 0x40
		r, err := NewReader(mut)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Cells(CellOptions{}); err == nil {
			t.Fatalf("bit flip at %d went undetected", at)
		}
		if _, err := r.Verify(); err == nil {
			t.Fatalf("Verify missed bit flip at %d", at)
		}
	}
}

func TestScanAggregates(t *testing.T) {
	// 2 designs × 1 workload × 3 seeds with known retired counts.
	var cells []Cell
	retired := map[string][]uint64{"baseline": {100, 110, 120}, "full": {200, 220, 240}}
	for design, rs := range retired {
		for seed, ret := range rs {
			cells = append(cells, Cell{
				Workload: "w", Design: design, Mode: "fixed", Cores: 1,
				Warm: 10, Measure: 100, Seed: int64(seed),
				Metrics: map[string]uint64{"m.Cycles": 100, "m.Retired": ret},
			})
		}
	}
	r, err := NewReader(Marshal(cells))
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Scan(r, Query{Metric: MetricIPC})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if groups[0].Design != "baseline" || groups[1].Design != "full" {
		t.Fatalf("groups not sorted: %+v", groups)
	}
	g := groups[0]
	// Mirror the scan's runtime float path (Go constant arithmetic is
	// arbitrary-precision, which would round differently).
	ipcs := []float64{100.0 / 100, 110.0 / 100, 120.0 / 100}
	wantMean := (ipcs[0] + ipcs[1] + ipcs[2]) / float64(3)
	if g.N != 3 || g.Mean != wantMean || g.Min != 1.0 || g.Max != 1.2 {
		t.Fatalf("baseline group = %+v", g)
	}
	if g.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want > 0 for 3 samples", g.CI95)
	}
	// Filtered scan.
	groups, err = Scan(r, Query{Metric: "m.Retired", Designs: []string{"full"}, Seeds: []int64{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].N != 2 || groups[0].Mean != 220 {
		t.Fatalf("filtered scan = %+v", groups)
	}
	// Unknown metric is an error, not a zero.
	if _, err := Scan(r, Query{Metric: "no.such"}); err == nil {
		t.Fatal("unknown metric scanned without error")
	}
	if _, err := Scan(r, Query{}); err == nil {
		t.Fatal("empty metric accepted")
	}
}

func TestCellKeyMatchesServiceKey(t *testing.T) {
	c := testCell(0)
	want := "v1|w=mixed-branchy|d=baseline|m=fixed|c=16|warm=100000|meas=80000|seed=1"
	if got := c.Key(); got != want {
		t.Fatalf("Key = %q, want %q", got, want)
	}
}

func TestSeriesBlobEdgeCases(t *testing.T) {
	// Empty series.
	cyc, val, err := decodeSeriesBlob(encodeSeriesBlob(nil, nil))
	if err != nil || cyc != nil || val != nil {
		t.Fatalf("empty round trip = (%v, %v, %v)", cyc, val, err)
	}
	// Single point.
	cyc, val, err = decodeSeriesBlob(encodeSeriesBlob([]uint64{42}, []float64{3.25}))
	if err != nil || len(cyc) != 1 || cyc[0] != 42 || val[0] != 3.25 {
		t.Fatalf("single-point round trip = (%v, %v, %v)", cyc, val, err)
	}
	// Non-monotonic cycles and special floats still round-trip bit-exactly
	// (wraparound deltas, raw XOR bits).
	cycles := []uint64{100, 50, ^uint64(0), 0, 7}
	values := []float64{0, -0.0, 1e308, -1e-308, 42}
	cyc, val, err = decodeSeriesBlob(encodeSeriesBlob(cycles, values))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cyc, cycles) {
		t.Fatalf("cycles: got %v, want %v", cyc, cycles)
	}
	for i := range values {
		if mathBits(val[i]) != mathBits(values[i]) {
			t.Fatalf("value %d: got %x, want %x", i, mathBits(val[i]), mathBits(values[i]))
		}
	}
}
