package resultstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// This file is the standalone time-series codec: the blob format that
// series carry inside a segment (and the unit FuzzSeriesDecode hammers).
//
//	uvarint npoints
//	timestamps: uvarint t0, zigzag Δ0, then zigzag Δ-of-Δ per point
//	values:     bitstream from the next byte boundary —
//	            value 0 as 64 raw bits, then per value a Gorilla XOR record:
//	              0              same value as previous
//	              10 <sig bits>  XOR fits the previous leading/length window
//	              11 <5b lead> <6b sig-1> <sig bits>  new window
//
// Timestamps come from a fixed sampling cadence, so the delta-of-delta
// stream is almost all zero bytes; values are occupancy means and IPC,
// which drift, so consecutive XORs share short significant-bit windows.
// Deltas use wraparound arithmetic, which makes the round trip exact for
// arbitrary inputs (the property tests exploit that), not just
// well-behaved ones.

// bitWriter appends MSB-first bit strings to a byte slice.
type bitWriter struct {
	b   []byte
	acc uint64 // pending bits, left-aligned in the low `n` bits
	n   uint
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	if n > 32 { // split so acc (≤7 pending bits) cannot overflow
		w.writeBits(v>>32, n-32)
		w.writeBits(v&0xFFFFFFFF, 32)
		return
	}
	w.acc = w.acc<<n | v&(^uint64(0)>>(64-n))
	w.n += n
	for w.n >= 8 {
		w.n -= 8
		w.b = append(w.b, byte(w.acc>>w.n))
	}
}

// bytes flushes the partial tail byte (zero-padded) and returns the stream.
func (w *bitWriter) bytes() []byte {
	if w.n > 0 {
		w.b = append(w.b, byte(w.acc<<(8-w.n)))
		w.acc, w.n = 0, 0
	}
	return w.b
}

// bitReader consumes MSB-first bit strings; reads past the end fail rather
// than fabricate zeros.
type bitReader struct {
	b   []byte
	off int // bit offset
}

func (r *bitReader) readBits(n uint) (uint64, bool) {
	if r.off+int(n) > len(r.b)*8 {
		return 0, false
	}
	var v uint64
	for n > 0 {
		byteIdx, bitIdx := r.off/8, uint(r.off%8)
		avail := 8 - bitIdx
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.b[byteIdx]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.off += int(take)
		n -= take
	}
	return v, true
}

// encodeSeriesBlob encodes parallel (cycle, value) points. Lengths must
// match; the shorter is authoritative if they do not (callers construct
// both from one loop, so this is belt-and-braces, not an API).
func encodeSeriesBlob(cycles []uint64, values []float64) []byte {
	n := len(cycles)
	if len(values) < n {
		n = len(values)
	}
	out := binary.AppendUvarint(nil, uint64(n))
	if n == 0 {
		return out
	}

	out = binary.AppendUvarint(out, cycles[0])
	var prevDelta uint64
	for i := 1; i < n; i++ {
		delta := cycles[i] - cycles[i-1]
		out = appendZvarint(out, int64(delta-prevDelta))
		prevDelta = delta
	}

	var w bitWriter
	prev := math.Float64bits(values[0])
	w.writeBits(prev, 64)
	// lead/sig describe the currently open significant-bit window; sig == 0
	// means no window has been opened yet.
	var lead, sig uint
	for i := 1; i < n; i++ {
		cur := math.Float64bits(values[i])
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.writeBits(0, 1)
			continue
		}
		l := uint(bits.LeadingZeros64(xor))
		if l > 31 {
			l = 31 // the window's lead field is 5 bits
		}
		t := uint(bits.TrailingZeros64(xor))
		s := 64 - l - t
		if sig > 0 && l >= lead && 64-lead-sig <= t {
			// Fits the open window: reuse it.
			w.writeBits(0b10, 2)
			w.writeBits(xor>>(64-lead-sig), sig)
		} else {
			lead, sig = l, s
			w.writeBits(0b11, 2)
			w.writeBits(uint64(lead), 5)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(xor>>t, sig)
		}
	}
	return append(out, w.bytes()...)
}

// decodeSeriesBlob decodes a series blob. Defensive: the point count is
// validated against the blob size before any allocation (each point costs
// at least one timestamp byte), and a bitstream that ends early or reuses
// a window before opening one is a typed error.
func decodeSeriesBlob(blob []byte) (cycles []uint64, values []float64, err error) {
	np, w := binary.Uvarint(blob)
	if w <= 0 {
		return nil, nil, fmt.Errorf("%w: series point count", errVarint(w))
	}
	rest := blob[w:]
	if np == 0 {
		return nil, nil, nil
	}
	if np > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: series of %d points in %d bytes", ErrCorrupt, np, len(rest))
	}
	n := int(np)

	cycles = make([]uint64, n)
	t0, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, nil, fmt.Errorf("%w: series first timestamp", errVarint(w))
	}
	rest = rest[w:]
	cycles[0] = t0
	var prevDelta uint64
	for i := 1; i < n; i++ {
		dod, w := binary.Uvarint(rest)
		if w <= 0 {
			return nil, nil, fmt.Errorf("%w: series timestamp %d", errVarint(w), i)
		}
		rest = rest[w:]
		prevDelta += uint64(unzigzag(dod))
		cycles[i] = cycles[i-1] + prevDelta
	}

	values = make([]float64, n)
	r := bitReader{b: rest}
	first, ok := r.readBits(64)
	if !ok {
		return nil, nil, fmt.Errorf("%w: series first value", ErrTruncated)
	}
	prev := first
	values[0] = math.Float64frombits(prev)
	var lead, sig uint
	for i := 1; i < n; i++ {
		ctl, ok := r.readBits(1)
		if !ok {
			return nil, nil, fmt.Errorf("%w: series value %d control bit", ErrTruncated, i)
		}
		if ctl == 0 {
			values[i] = math.Float64frombits(prev)
			continue
		}
		reuse, ok := r.readBits(1)
		if !ok {
			return nil, nil, fmt.Errorf("%w: series value %d control bit", ErrTruncated, i)
		}
		if reuse == 0 { // '10': previous window
			if sig == 0 {
				return nil, nil, fmt.Errorf("%w: series value %d reuses a window before one was opened", ErrCorrupt, i)
			}
		} else { // '11': new window
			l, ok1 := r.readBits(5)
			s, ok2 := r.readBits(6)
			if !ok1 || !ok2 {
				return nil, nil, fmt.Errorf("%w: series value %d window header", ErrTruncated, i)
			}
			lead, sig = uint(l), uint(s)+1
			if lead+sig > 64 {
				return nil, nil, fmt.Errorf("%w: series value %d window %d+%d exceeds 64 bits", ErrCorrupt, i, lead, sig)
			}
		}
		mbits, ok := r.readBits(sig)
		if !ok {
			return nil, nil, fmt.Errorf("%w: series value %d significant bits", ErrTruncated, i)
		}
		prev ^= mbits << (64 - lead - sig)
		values[i] = math.Float64frombits(prev)
	}
	return cycles, values, nil
}

// errVarint maps binary.Uvarint's failure modes onto the typed errors:
// 0 bytes read means the input ran out, negative means a >64-bit varint.
func errVarint(w int) error {
	if w == 0 {
		return ErrTruncated
	}
	return ErrCorrupt
}
