// Compare every implemented frontend design on one workload: the sequential
// family (NL..N8L), the paper's SN4L / SN4L+Dis / SN4L+Dis+BTB line, and
// the prior-work competitors (conventional discontinuity, Confluence,
// Boomerang, Shotgun).
//
//	go run ./examples/compare_prefetchers [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"dnc/pkg/dncfront"
)

func main() {
	workload := "OLTP-DB-A"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	params := dncfront.Workload(workload)
	opts := dncfront.Options{Cores: 8, WarmCycles: 100_000, MeasureCycles: 80_000}

	designs := []string{
		"NL", "N2L", "N4L", "N8L",
		"SN4L", "SN4L+Dis", "SN4L+Dis+BTB",
		"discontinuity", "confluence", "boomerang", "shotgun",
	}

	fmt.Printf("workload %s (%d cores)\n", workload, opts.Cores)
	fmt.Printf("%-14s %8s %9s %6s %6s %9s\n",
		"design", "speedup", "coverage", "FSCR", "CMAL", "bandwidth")
	for _, d := range designs {
		c, err := dncfront.Compare(params, d, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %7.2fx %8.0f%% %5.0f%% %5.0f%% %8.2fx\n",
			d, c.Speedup, 100*c.MissCoverage, 100*c.FSCR,
			100*c.Result.M.CMAL(), c.BandwidthRatio)
	}
}
