// Build a custom synthetic workload and study how the proposed prefetcher's
// advantage grows with the instruction footprint — the paper's core claim
// about "workloads with very large instruction footprints".
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	"dnc/pkg/dncfront"
)

func main() {
	opts := dncfront.Options{Cores: 4, WarmCycles: 80_000, MeasureCycles: 60_000}

	fmt.Printf("%-10s %12s %14s %14s\n", "footprint", "base MPKI", "SN4L+Dis+BTB", "shotgun")
	for _, footprint := range []int{512 << 10, 2 << 20, 6 << 20} {
		params := dncfront.WorkloadParams{
			Name:           fmt.Sprintf("custom-%dMB", footprint>>20),
			FootprintBytes: footprint,
			// Short handler functions with calls between them: the shape of
			// server request processing. Everything left zero takes the
			// documented defaults.
			FuncMinBlocks:    4,
			FuncMaxBlocks:    12,
			CondFrac:         0.42,
			JumpFrac:         0.07,
			CallFrac:         0.14,
			IndirectCallFrac: 0.08,
			TakenBias:        0.985,
			LoadFrac:         0.22,
			StoreFrac:        0.09,
			RareBlockFrac:    0.08,
			BackwardFrac:     0.1,
			GenSeed:          1234,
		}

		full, err := dncfront.Compare(params, "SN4L+Dis+BTB", opts)
		if err != nil {
			log.Fatal(err)
		}
		shot, err := dncfront.Compare(params, "shotgun", opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %11.1f %13.2fx %13.2fx\n",
			fmt.Sprintf("%d KB", footprint>>10),
			full.Baseline.M.MPKI(full.Baseline.M.DemandMisses),
			full.Speedup, shot.Speedup)
	}
	fmt.Println("\nthe BTB-content-independent design keeps its advantage as the footprint grows")
}
