// Quickstart: simulate one server workload under the paper's SN4L+Dis+BTB
// prefetcher and print what it buys over a machine with no instruction/BTB
// prefetcher.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dnc/pkg/dncfront"
)

func main() {
	// Pick one of the seven calibrated server workloads.
	params := dncfront.Workload("Web-Zeus")

	// Keep the example fast: 4 cores and short windows. Drop Options{} to
	// get the paper's 16-core, 200K+200K methodology.
	opts := dncfront.Options{Cores: 4, WarmCycles: 80_000, MeasureCycles: 80_000}

	cmp, err := dncfront.Compare(params, "SN4L+Dis+BTB", opts)
	if err != nil {
		log.Fatal(err)
	}

	m := cmp.Result.M
	fmt.Printf("workload %s, design %s\n", cmp.Result.Workload, cmp.Result.Design)
	fmt.Printf("  baseline IPC        %.3f\n", cmp.Baseline.M.IPC())
	fmt.Printf("  prefetcher IPC      %.3f  (speedup %.2fx)\n", m.IPC(), cmp.Speedup)
	fmt.Printf("  L1i miss MPKI       %.1f -> %.1f  (coverage %.0f%%)\n",
		cmp.Baseline.M.MPKI(cmp.Baseline.M.DemandMisses),
		m.MPKI(m.DemandMisses), 100*cmp.MissCoverage)
	fmt.Printf("  frontend stalls cut %.0f%% (FSCR)\n", 100*cmp.FSCR)
	fmt.Printf("  CMAL                %.0f%%\n", 100*m.CMAL())
	fmt.Printf("  metadata storage    %.1f KB per core\n",
		float64(cmp.Result.StorageBits)/8/1024)
}
