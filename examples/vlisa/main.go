// Variable-length ISA mode: run a workload under the 2-10 byte encoding,
// where pre-decoding needs the per-block branch footprints that the DV-LLC
// virtualizes (the paper's Section V.D), and show the DV-LLC's cost is
// negligible (Section VII.J).
//
//	go run ./examples/vlisa
package main

import (
	"fmt"
	"log"

	"dnc/pkg/dncfront"
)

func main() {
	params := dncfront.Workload("Web-Zeus")
	params.Mode = dncfront.VariableLength // switches the encoding and enables the DV-LLC

	opts := dncfront.Options{Cores: 4, WarmCycles: 80_000, MeasureCycles: 80_000}
	cmp, err := dncfront.Compare(params, "SN4L+Dis+BTB", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("variable-length ISA on %s\n", cmp.Result.Workload)
	fmt.Printf("  speedup over baseline  %.2fx\n", cmp.Speedup)
	fmt.Printf("  FSCR                   %.0f%%\n", 100*cmp.FSCR)

	s := cmp.Result.LLCStats
	fmt.Printf("\nDV-LLC branch-footprint virtualization:\n")
	fmt.Printf("  BF-holder transitions  %d sets\n", s.BFTransitions)
	fmt.Printf("  footprints stored      %d (%d failed)\n", s.BFStores-s.BFStoreFails, s.BFStoreFails)
	fmt.Printf("  footprint loads        %d (%.1f%% hit)\n",
		s.BFLoads, 100*float64(s.BFLoadHits)/float64(max(s.BFLoads, 1)))
	instHit := float64(s.InstHits) / float64(max(s.InstAccesses, 1))
	dataHit := float64(s.DataHits) / float64(max(s.DataAccesses, 1))
	fmt.Printf("  LLC hit ratios         instruction %.1f%%, data %.1f%%\n",
		100*instHit, 100*dataHit)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
