// Command tracegen writes a committed-instruction trace of a synthetic
// server workload in the compact binary format of internal/trace.
//
// Usage:
//
//	tracegen -workload OLTP-DB-A -n 10000000 -o dba.dnct [-mode fixed|variable] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/sim"
	"dnc/internal/trace"
	"dnc/internal/workloads"
)

func main() {
	workload := flag.String("workload", "Web-Zeus", "workload name")
	n := flag.Uint64("n", 10_000_000, "instructions to emit")
	out := flag.String("o", "", "output path (default <workload>.dnct)")
	seed := flag.Int64("seed", 1, "walker seed")
	mode := flag.String("mode", "fixed", "ISA mode: fixed or variable")
	flag.Parse()

	m := isa.Fixed
	if *mode == "variable" {
		m = isa.Variable
	}
	path := *out
	if path == "" {
		path = *workload + ".dnct"
	}

	prog := sim.Program(workloads.Params(*workload, m))
	walker := wl.NewWalker(prog, *seed)

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := trace.NewWriter(f, m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	var s wl.Step
	for i := uint64(0); i < *n; i++ {
		walker.Next(&s)
		if err := w.Write(trace.FromStep(&s)); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: write: %v\n", err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: flush: %v\n", err)
		os.Exit(1)
	}
	info, _ := f.Stat()
	fmt.Printf("wrote %d records (%.1f MB, %.2f bytes/inst) to %s\n",
		w.Count(), float64(info.Size())/1e6, float64(info.Size())/float64(w.Count()), path)
}
