// Command dncworker is the remote execution plane for dncserved: a worker
// process that registers with a control plane, pulls leased simulation
// cells in batches, executes them with the exact RunConfig construction the
// server's in-process pool uses, and uploads results under each cell's
// content address.
//
// Usage:
//
//	dncworker -server http://host:8080 [-name $(hostname)] [-capacity 1]
//	          [-lease-batch 0] [-poll 250ms] [-cell-timeout 10m]
//
// Run any number of these against one dncserved; the server spreads leases
// across them and reassigns the cells of any worker that dies (missed
// heartbeats) or wedges (heartbeats without progress). Killing a dncworker
// at any moment — including mid-cell — loses nothing: its leases expire and
// the cells re-run elsewhere, and because simulation is deterministic a
// late duplicate upload is bit-identical and acknowledged idempotently.
// SIGINT/SIGTERM abandons held leases immediately (they expire server-side
// within one TTL); the server telling us it is draining lets in-flight
// cells finish first. See docs/OPERATIONS.md for topology and tuning.
//
// With -metrics-addr set the worker serves its own Prometheus /metrics
// (completed/failed/abandoned cells, lease revocations, HTTP retries by
// status). At exit the worker prints a terminal summary: its counters plus
// the most recent cell failures with worker and cell context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnc/internal/service/worker"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "dncserved base URL")
	name := flag.String("name", defaultName(), "worker label shown to operators")
	capacity := flag.Int("capacity", 1, "cells executed concurrently")
	leaseBatch := flag.Int("lease-batch", 0, "max cells per lease request (0 = server's cap)")
	poll := flag.Duration("poll", 250*time.Millisecond, "idle re-poll cadence")
	cellTimeout := flag.Duration("cell-timeout", 10*time.Minute, "per-cell execution bound, reported transient (0 = none)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "dncworker: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	tel := worker.NewTelemetry()
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dncworker: metrics listen %s: %v\n", *metricsAddr, err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", tel.Reg.Handler())
		go http.Serve(ln, mux)
		logger.Info("metrics serving", "addr", ln.Addr().String())
	}

	err := worker.Run(ctx, worker.Options{
		Server:       *server,
		Name:         *name,
		Capacity:     *capacity,
		LeaseBatch:   *leaseBatch,
		PollInterval: *poll,
		CellTimeout:  *cellTimeout,
		Log:          logger,
		Telemetry:    tel,
	})
	if s := tel.Summary(); s != "" {
		fmt.Fprintf(os.Stderr, "dncworker: session summary: %s\n", s)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("exiting on error", "err", err.Error())
		os.Exit(1)
	}
	logger.Info("exiting cleanly")
}

func defaultName() string {
	if h, err := os.Hostname(); err == nil {
		return h
	}
	return "dncworker"
}
