// Command dncbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dncbench [-scale quick|paper] [-workloads a,b,c] [-only fig16,fig17] [-ablations]
//
// Each experiment prints the paper's expected result alongside the
// measured rows, mirroring EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dnc/internal/bench"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick (16 cores, short windows) or paper (16 cores, 200K+200K)")
	only := flag.String("only", "", "comma-separated experiment ids (default: all); see -list")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload names (default: all seven)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	ablations := flag.Bool("ablations", false, "also run the extra ablation sweeps")
	samples := flag.Int("samples", 1, "independently seeded samples pooled per configuration")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.Quick()
	case "paper":
		cfg = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "dncbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workloadsFlag != "" {
		cfg.Workloads = strings.Split(*workloadsFlag, ",")
	}
	cfg.Samples = *samples
	h := bench.New(cfg)

	ids := bench.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}

	for _, id := range ids {
		start := time.Now()
		e, ok := h.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "dncbench: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		printExperiment(e, time.Since(start))
	}
	if *ablations {
		for _, e := range h.Ablations() {
			printExperiment(e, 0)
		}
	}
}

func printExperiment(e bench.Experiment, d time.Duration) {
	fmt.Printf("== %s: %s\n", e.ID, e.Title)
	if e.PaperNote != "" {
		fmt.Printf("   (%s)\n", e.PaperNote)
	}
	fmt.Println(e.Table.String())
	if d > 0 {
		fmt.Printf("   [%.1fs]\n", d.Seconds())
	}
	fmt.Println()
}
