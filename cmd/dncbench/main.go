// Command dncbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dncbench [-scale quick|paper] [-workloads a,b,c] [-only fig16,fig17] [-ablations]
//	         [-jobs N] [-timeout 10m] [-journal sweep.jsonl] [-checkpoint-dir ckpts]
//	         [-store-out results.dncr]
//
// Each experiment prints the paper's expected result alongside the
// measured rows, mirroring EXPERIMENTS.md. Simulations fan out across a
// bounded worker pool; a panicking or livelocked configuration is reported
// at the end (non-zero exit) instead of aborting the whole run. With
// -journal, the shared cross-experiment sweeps are recorded as they finish,
// so an interrupted benchmark re-invoked with the same journal resumes
// instead of recomputing. With -checkpoint-dir, individual simulations also
// snapshot mid-run, so even the cell that was executing at the moment of
// interruption resumes from its last snapshot rather than from cycle zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnc/internal/bench"
	"dnc/internal/sim"
	"dnc/internal/sim/runner"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick (16 cores, short windows) or paper (16 cores, 200K+200K)")
	only := flag.String("only", "", "comma-separated experiment ids (default: all); see -list")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload names (default: all seven)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	ablations := flag.Bool("ablations", false, "also run the extra ablation sweeps")
	samples := flag.Int("samples", 1, "independently seeded samples pooled per configuration")
	jobs := flag.Int("jobs", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-simulation wall-clock budget (0 = none)")
	journal := flag.String("journal", "", "JSONL run journal: records finished runs and resumes an interrupted benchmark")
	ckptDir := flag.String("checkpoint-dir", "", "snapshot simulations mid-run into this directory; a re-run resumes interrupted simulations from their last snapshot")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "snapshot cadence in simulated cycles under -checkpoint-dir (0 = default)")
	progress := flag.Bool("progress", true, "print a periodic one-line sweep summary (cells done/failed/retried, rate, ETA) to stderr")
	httpAddr := flag.String("http", "", "serve live sweep progress, expvar-style counters, and pprof on this address (e.g. localhost:6060)")
	storeOut := flag.String("store-out", "", "append every completed cell (with sampled metric time-series) to this columnar result store; inspect with dncstore")
	schedFlag := flag.String("sched", "wheel", "simulation engine: wheel (event-driven) or tick (reference); bit-exact either way")
	intraJobs := flag.Int("intra-jobs", 0, "shard each simulation's cores across this many goroutines (0 or 1 = serial; requires -sched=wheel)")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.Quick()
	case "paper":
		cfg = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "dncbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workloadsFlag != "" {
		cfg.Workloads = strings.Split(*workloadsFlag, ",")
	}
	sched, err := sim.ParseSchedMode(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dncbench: %v\n", err)
		os.Exit(2)
	}
	cfg.Sched = sched
	cfg.IntraJobs = *intraJobs
	cfg.Samples = *samples
	cfg.Jobs = *jobs
	cfg.Timeout = *timeout
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	if *progress {
		cfg.ProgressOut = os.Stderr
	}
	cfg.StorePath = *storeOut
	if *httpAddr != "" {
		if cfg.Progress == nil {
			cfg.Progress = runner.NewProgress()
		}
		srv, err := runner.StartDebug(*httpAddr, cfg.Progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dncbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dncbench: debug endpoint on http://%s/debug/sweep\n", srv.Addr)
	}
	h := bench.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	h.SetContext(ctx)

	if *journal != "" {
		start := time.Now()
		if err := h.Prewarm(ctx, *journal); err != nil {
			fmt.Fprintf(os.Stderr, "dncbench: prewarm: %v\n", err)
			if ctx.Err() != nil {
				os.Exit(1)
			}
			// Other failures are already recorded on the harness; the
			// experiments still run and the exit code reflects them.
		} else {
			fmt.Printf("prewarm: shared sweeps ready in %.1fs (journal %s)\n\n",
				time.Since(start).Seconds(), *journal)
		}
	}

	ids := bench.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}

	for _, id := range ids {
		start := time.Now()
		e, ok := h.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "dncbench: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		printExperiment(e, time.Since(start))
	}
	if *ablations {
		for _, e := range h.Ablations() {
			printExperiment(e, 0)
		}
	}
	if *storeOut != "" {
		n, err := h.CloseStore()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dncbench: sealing result store: %v\n", err)
			os.Exit(1)
		}
		var bytes int64
		if fi, err := os.Stat(*storeOut); err == nil {
			bytes = fi.Size()
		}
		fmt.Printf("store: %d cells, %d bytes (%s)\n", n, bytes, *storeOut)
	}
	if err := h.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "dncbench: %d simulation failure(s):\n%v\n",
			strings.Count(err.Error(), "\n")+1, err)
		os.Exit(1)
	}
}

func printExperiment(e bench.Experiment, d time.Duration) {
	fmt.Printf("== %s: %s\n", e.ID, e.Title)
	if e.PaperNote != "" {
		fmt.Printf("   (%s)\n", e.PaperNote)
	}
	fmt.Println(e.Table.String())
	if d > 0 {
		fmt.Printf("   [%.1fs]\n", d.Seconds())
	}
	fmt.Println()
}
