// Command dncstore inspects and maintains columnar result stores
// (internal/resultstore) written by dncbench -store-out and dncserved.
//
// Usage:
//
//	dncstore info    store.dncr
//	dncstore verify  store.dncr
//	dncstore query   [-metric ipc] [-workloads a,b] [-designs x,y]
//	                 [-seeds 1,2] [-json] store.dncr
//	dncstore export  [-hists] [-series] store.dncr      (JSONL to stdout)
//	dncstore compact store.dncr compacted.dncr
//
// verify exits non-zero on the first bad block — the cheap integrity sweep
// to run against a store file of unknown provenance. compact rewrites a
// store whose cells arrived one fsync at a time (the dncserved admission
// path produces one tiny segment per cell) into full-size segments, which
// restores the format's compression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dnc/internal/resultstore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = runInfo(args)
	case "verify":
		err = runVerify(args)
	case "query":
		err = runQuery(args)
	case "export":
		err = runExport(args)
	case "compact":
		err = runCompact(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dncstore %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dncstore {info|verify|query|export|compact} [flags] <store.dncr> [out.dncr]")
	os.Exit(2)
}

// oneFile parses flags and returns the single positional store path.
func oneFile(fs *flag.FlagSet, args []string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one store file, got %d args", fs.NArg())
	}
	return fs.Arg(0), nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	r, err := resultstore.OpenReader(path)
	if err != nil {
		return err
	}
	cells, err := r.Cells(resultstore.CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		return err
	}
	sizes := r.BlockSizes()
	minB, maxB, sumB := 0, 0, 0
	for i, s := range sizes {
		if i == 0 || s < minB {
			minB = s
		}
		if s > maxB {
			maxB = s
		}
		sumB += s
	}
	workloads := map[string]bool{}
	designs := map[string]bool{}
	seeds := map[int64]bool{}
	hists, series := 0, 0
	for i := range cells {
		workloads[cells[i].Workload] = true
		designs[cells[i].Design] = true
		seeds[cells[i].Seed] = true
		hists += len(cells[i].Hists)
		series += len(cells[i].Series)
	}
	fmt.Printf("%s: format v%d, %d bytes\n", path, resultstore.Version, r.Size())
	fmt.Printf("blocks:    %d (min %d, max %d, payload+framing %d bytes)\n", len(sizes), minB, maxB, sumB)
	fmt.Printf("cells:     %d (%d histograms, %d series)\n", len(cells), hists, series)
	fmt.Printf("workloads: %s\n", joinSorted(workloads))
	fmt.Printf("designs:   %s\n", joinSorted(designs))
	fmt.Printf("seeds:     %s\n", joinSeeds(seeds))
	return nil
}

func joinSorted(set map[string]bool) string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

func joinSeeds(set map[int64]bool) string {
	out := make([]int64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	strs := make([]string, len(out))
	for i, s := range out {
		strs[i] = strconv.FormatInt(s, 10)
	}
	return strings.Join(strs, ", ")
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	blocks, err := resultstore.Verify(data)
	if err != nil {
		return fmt.Errorf("%d valid block(s), then: %w", blocks, err)
	}
	// Verify checks framing and checksums; a full decode additionally
	// exercises every varint and bitstream in the payloads.
	r, err := resultstore.NewReader(data)
	if err != nil {
		return err
	}
	cells, err := r.Cells(resultstore.CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		return fmt.Errorf("blocks ok but payload decode failed: %w", err)
	}
	fmt.Printf("%s: ok — %d block(s), %d cell(s), %d bytes\n", path, blocks, len(cells), len(data))
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	metric := fs.String("metric", resultstore.MetricIPC, "metric column (m.Retired, llc.InstHits, ...) or the derived \"ipc\"")
	workloadsFlag := fs.String("workloads", "", "comma-separated workload filter (default: all)")
	designsFlag := fs.String("designs", "", "comma-separated design filter (default: all)")
	seedsFlag := fs.String("seeds", "", "comma-separated seed filter (default: all)")
	asJSON := fs.Bool("json", false, "emit the groups as JSON instead of a table")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	q := resultstore.Query{
		Metric:    *metric,
		Workloads: splitCSV(*workloadsFlag),
		Designs:   splitCSV(*designsFlag),
	}
	for _, s := range splitCSV(*seedsFlag) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", s, err)
		}
		q.Seeds = append(q.Seeds, v)
	}
	r, err := resultstore.OpenReader(path)
	if err != nil {
		return err
	}
	groups, err := resultstore.Scan(r, q)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(groups)
	}
	fmt.Printf("%-16s %-24s %4s %12s %10s %12s %12s\n",
		"workload", "design", "n", "mean", "ci95", "min", "max")
	for _, g := range groups {
		fmt.Printf("%-16s %-24s %4d %12.6g %10.4g %12.6g %12.6g\n",
			g.Workload, g.Design, g.N, g.Mean, g.CI95, g.Min, g.Max)
	}
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	withHists := fs.Bool("hists", false, "include histogram snapshots")
	withSeries := fs.Bool("series", false, "include sampled time-series")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	r, err := resultstore.OpenReader(path)
	if err != nil {
		return err
	}
	cells, err := r.Cells(resultstore.CellOptions{WithHists: *withHists, WithSeries: *withSeries})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for i := range cells {
		if err := enc.Encode(&cells[i]); err != nil {
			return err
		}
	}
	return nil
}

func runCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("expected <in.dncr> <out.dncr>, got %d args", fs.NArg())
	}
	in, out := fs.Arg(0), fs.Arg(1)
	if _, err := os.Stat(out); err == nil {
		return fmt.Errorf("refusing to overwrite existing %s", out)
	}
	r, err := resultstore.OpenReader(in)
	if err != nil {
		return err
	}
	cells, err := r.Cells(resultstore.CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		return err
	}
	w, err := resultstore.OpenWriter(out)
	if err != nil {
		return err
	}
	for i := range cells {
		if _, err := w.Append(cells[i]); err != nil {
			w.Close()
			os.Remove(out)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(out)
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d cells, %d bytes -> %s: %d bytes (%.1f%%)\n",
		in, len(cells), r.Size(), out, fi.Size(), 100*float64(fi.Size())/float64(r.Size()))
	return nil
}
