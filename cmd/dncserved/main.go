// Command dncserved is the sweep-as-a-service daemon: a long-running,
// multi-client job server over the simulation engine.
//
// Usage:
//
//	dncserved [-addr localhost:8080] [-data dncserved-data] [-workers 2]
//	          [-cell-jobs N] [-queue-cap 64] [-retries 2] [-cell-timeout 10m]
//	          [-job-timeout 0] [-checkpoint-every N] [-max-cells 4096]
//	          [-drain-timeout 30s] [-cache-max-bytes 0]
//	          [-lease-ttl 15s] [-lease-max-age 10m] [-lease-batch 16]
//
// Clients POST sweep specs to /v1/jobs and stream results from
// /v1/jobs/{id}/results (see README "Sweep as a service"). Identical cells
// — same workload, design, geometry, and seed — are served from a
// persistent content-addressed cache: runs are deterministic, so a cache
// hit is bit-exact and free. Worker crashes recover through the runner's
// journal and checkpoint machinery; SIGINT/SIGTERM triggers a graceful
// drain that stops admissions, checkpoints in-flight work, flushes
// persistent state, and exits 0 with every accepted job either completed
// or durably queued for the next start.
//
// With -cache-max-bytes > 0 the result cache is bounded: oldest entries
// are evicted first and the file compacts in place (an evicted cell simply
// re-runs on its next request — determinism makes eviction invisible).
//
// Remote dncworker processes may register at any time and take over cell
// execution (see cmd/dncworker and docs/OPERATIONS.md); with none
// registered the server runs cells in-process exactly as before. The
// -lease-* flags tune the worker plane: -lease-ttl is the heartbeat window
// after which a silent worker forfeits its leases, -lease-max-age the
// per-cell progress budget that revokes leases from frozen-but-heartbeating
// workers, and -lease-batch the most cells one lease request may claim.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnc/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	data := flag.String("data", "dncserved-data", "persistent state directory (jobs, result cache, dead letters)")
	workers := flag.Int("workers", 2, "jobs executed concurrently")
	cellJobs := flag.Int("cell-jobs", 0, "concurrently simulating cells per job (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 64, "max queued jobs before submissions get 429 + Retry-After")
	retries := flag.Int("retries", 2, "per-cell retries on transient failure (jittered exponential backoff)")
	cellTimeout := flag.Duration("cell-timeout", 10*time.Minute, "per-attempt wall-clock budget per cell (0 = none)")
	jobTimeout := flag.Duration("job-timeout", 0, "whole-job wall-clock budget (0 = none)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "mid-cell snapshot cadence in simulated cycles (0 = default)")
	maxCells := flag.Int("max-cells", 4096, "max cells one submitted spec may expand to")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGINT/SIGTERM")
	cacheMax := flag.Int64("cache-max-bytes", 0, "result-cache size bound; oldest entries evicted first (0 = unbounded)")
	leaseTTL := flag.Duration("lease-ttl", service.DefaultLeaseTTL, "worker heartbeat window; silent workers forfeit their leases")
	leaseMaxAge := flag.Duration("lease-max-age", service.DefaultLeaseMaxAge, "per-lease progress budget; frozen workers' cells reassign after this")
	leaseBatch := flag.Int("lease-batch", service.DefaultLeaseBatchMax, "max cells per worker lease request")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "dncserved: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := service.New(service.Config{
		DataDir:         *data,
		Workers:         *workers,
		CellJobs:        *cellJobs,
		QueueCap:        *queueCap,
		Retries:         *retries,
		CellTimeout:     *cellTimeout,
		JobTimeout:      *jobTimeout,
		CheckpointEvery: *ckptEvery,
		MaxCellsPerJob:  *maxCells,
		CacheMaxBytes:   *cacheMax,
		LeaseTTL:        *leaseTTL,
		LeaseMaxAge:     *leaseMaxAge,
		LeaseBatchMax:   *leaseBatch,
		Logger:          logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dncserved: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "dncserved: %v\n", err)
		os.Exit(1)
	}
	logger.Info("serving", "addr", "http://"+srv.Addr(), "data", *data,
		"metrics", "http://"+srv.Addr()+"/metrics")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintln(os.Stderr, "dncserved: draining (in-flight cells checkpoint; accepted jobs persist)")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "dncserved: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "dncserved: drained cleanly")
}
