// Command promlint validates Prometheus text exposition read from stdin
// against the format rules in internal/telemetry: HELP/TYPE precede their
// samples, counters end in _total (or _seconds/_bytes for unit'd counters),
// histogram buckets are cumulative and end with +Inf, every sample parses.
//
// Usage:
//
//	curl -fsS http://server:8080/metrics | promlint
//
// Exit status 0 when the exposition is clean, 1 with one line per problem
// on stderr otherwise. CI pipes a live dncserved scrape through this so a
// malformed metric can never ship.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"dnc/internal/telemetry"
)

func main() {
	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(body) == 0 {
		fmt.Fprintln(os.Stderr, "promlint: empty exposition (scrape failed?)")
		os.Exit(1)
	}
	errs := telemetry.Lint(body)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", e)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d problem(s)\n", len(errs))
		os.Exit(1)
	}
	samples := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	fmt.Printf("promlint: clean (%d samples)\n", samples)
}
