// Command dncsim runs one simulation: a workload under a frontend design,
// printing the measured frontend statistics and, when a baseline comparison
// is requested, the derived coverage/FSCR/speedup metrics.
//
// Usage:
//
//	dncsim -workload Web-Zeus -design SN4L+Dis+BTB [-cores 16] [-warm 200000] [-measure 200000] [-mode fixed|variable] [-baseline]
//
// With -trace FILE the cores replay a recorded trace of the workload
// (cmd/tracegen) instead of walking it live.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"

	wl "dnc/internal/cfg"
	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/obs"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
	"dnc/internal/sim/difftest"
	"dnc/internal/workloads"
)

// designs maps CLI names to catalog entries. The design set and its paper
// configurations live in prefetch.Catalog(), shared with the differential
// harness so -verify covers exactly what the CLI can run.
var designs = func() map[string]prefetch.CatalogEntry {
	m := make(map[string]prefetch.CatalogEntry)
	for _, e := range prefetch.Catalog() {
		m[e.Name] = e
	}
	return m
}()

func main() {
	workload := flag.String("workload", "Web-Zeus", "workload name (see -listworkloads)")
	design := flag.String("design", "SN4L+Dis+BTB", "frontend design (see -listdesigns)")
	cores := flag.Int("cores", 16, "active cores on the 4x4 mesh")
	warm := flag.Uint64("warm", 200_000, "warm-up cycles")
	measure := flag.Uint64("measure", 200_000, "measurement cycles")
	seed := flag.Int64("seed", 1, "sample seed")
	mode := flag.String("mode", "fixed", "ISA mode: fixed or variable")
	baseline := flag.Bool("baseline", false, "also run the no-prefetch baseline and report derived metrics")
	tracePath := flag.String("trace", "", "replay a recorded trace of the workload instead of walking it live")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this wall-clock budget (0 = none)")
	ckptPath := flag.String("checkpoint-path", "", "snapshot the run into this file every -checkpoint-every cycles")
	ckptEvery := flag.Uint64("checkpoint-every", 65536, "snapshot cadence in simulated cycles (with -checkpoint-path)")
	resume := flag.String("resume", "", "resume the run from this snapshot file instead of starting at cycle zero")
	verify := flag.Bool("verify", false, "differentially validate designs against the reference oracle instead of reporting performance (all designs unless -design is given explicitly; honors -workload/-cores/-warm/-measure/-verify-seeds)")
	verifySeeds := flag.Int("verify-seeds", 3, "independent walker seeds per design with -verify")
	obsOn := flag.Bool("obs", false, "enable the observability layer: latency/occupancy histograms and stall attribution summaries")
	traceOut := flag.String("trace-out", "", "export the measurement window's event trace as Chrome trace_event JSON (load in ui.perfetto.dev); implies -obs")
	traceEvents := flag.Int("trace-events", 1<<16, "event tracer ring capacity with -trace-out (keeps the trailing events)")
	listD := flag.Bool("listdesigns", false, "list design names and exit")
	listW := flag.Bool("listworkloads", false, "list workload names and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit (go tool pprof)")
	schedFlag := flag.String("sched", "wheel", "simulation engine: wheel (event-driven) or tick (reference); bit-exact either way")
	intraJobs := flag.Int("intra-jobs", 0, "shard this run's cores across this many goroutines (0 or 1 = serial; requires -sched=wheel)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dncsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dncsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dncsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dncsim: -memprofile: %v\n", err)
			}
		}()
	}

	if *listD {
		names := make([]string, 0, len(designs))
		for n := range designs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	if *listW {
		for _, n := range workloads.Names {
			fmt.Println(n)
		}
		return
	}

	d, ok := designs[*design]
	if !ok {
		fmt.Fprintf(os.Stderr, "dncsim: unknown design %q (see -listdesigns)\n", *design)
		os.Exit(2)
	}
	m := isa.Fixed
	if *mode == "variable" {
		m = isa.Variable
	}

	if *verify {
		entries := prefetch.Catalog()
		designGiven := false
		flag.Visit(func(f *flag.Flag) { designGiven = designGiven || f.Name == "design" })
		if designGiven {
			entries = []prefetch.CatalogEntry{d}
		}
		runVerify(entries, workloads.Params(*workload, m), *cores, *warm, *measure, *verifySeeds)
		return
	}

	sched, err := sim.ParseSchedMode(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dncsim: %v\n", err)
		os.Exit(2)
	}
	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = d.PrefetchBufferEntries
	rc := sim.RunConfig{
		Workload:      workloads.Params(*workload, m),
		NewDesign:     d.New,
		Cores:         *cores,
		WarmCycles:    *warm,
		MeasureCycles: *measure,
		Seed:          *seed,
		Core:          cc,
		ResumeFrom:    *resume,
		Sched:         sched,
		IntraJobs:     *intraJobs,
	}
	if *ckptPath != "" {
		rc.CheckpointPath = *ckptPath
		rc.CheckpointEvery = *ckptEvery
	}
	if *obsOn || *traceOut != "" {
		oc := &obs.Config{}
		if *traceOut != "" {
			oc.TraceEvents = *traceEvents
		}
		rc.Obs = oc
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runOne := func(rc sim.RunConfig) sim.Result {
		rctx := ctx
		if *timeout > 0 {
			var cancel context.CancelFunc
			rctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		var (
			r   sim.Result
			err error
		)
		if *tracePath != "" {
			r, err = sim.RunTraceChecked(rctx, rc, *tracePath)
		} else {
			r, err = sim.RunChecked(rctx, rc)
		}
		if err != nil {
			// Failures exit cleanly with a diagnostic: a livelocked design
			// renders its stall snapshot, a recovered panic its stack.
			fmt.Fprintf(os.Stderr, "dncsim: %v\n", err)
			os.Exit(1)
		}
		return r
	}
	r := runOne(rc)
	report(r)
	reportObs(r)
	if *traceOut != "" && r.Obs != nil {
		meta := obs.TraceMeta{Workload: r.Workload, Design: r.Design, Cores: len(r.PerCore)}
		if err := obs.WritePerfettoFile(*traceOut, r.Obs.Events, meta); err != nil {
			fmt.Fprintf(os.Stderr, "dncsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d events written to %s (%d emitted, %d dropped by the ring)\n",
			len(r.Obs.Events), *traceOut, r.Obs.TraceTotal, r.Obs.TraceDropped)
	}

	if *baseline && *design != "baseline" {
		rc.NewDesign = designs["baseline"].New
		rc.Core.PrefetchBufferEntries = 0
		// The snapshot (and any resume point) belongs to the main design's
		// run; the baseline comparison always runs fresh. The comparison is
		// also uninstrumented: derived metrics need no histograms.
		rc.CheckpointPath, rc.CheckpointEvery, rc.ResumeFrom = "", 0, ""
		rc.Obs = nil
		base := runOne(rc)
		fmt.Println()
		fmt.Printf("derived vs baseline (IPC %.3f):\n", base.M.IPC())
		fmt.Printf("  speedup            %.3f\n", sim.Speedup(r, base))
		fmt.Printf("  miss coverage      %.1f%%\n", 100*sim.MissCoverage(r, base))
		fmt.Printf("  seq miss coverage  %.1f%%\n", 100*sim.SeqMissCoverage(r, base))
		fmt.Printf("  FSCR               %.1f%%\n", 100*sim.FSCR(r, base))
		fmt.Printf("  bandwidth ratio    %.2fx\n", sim.BandwidthRatio(r, base))
		fmt.Printf("  cache lookup ratio %.2fx\n", sim.LookupRatio(r, base))
	}
}

// runVerify drives every entry through the differential harness: each run
// executes the timing simulator with the design shimmed against the
// functional reference model, asserting the retired instruction stream and
// demand block-transition stream match instruction for instruction. Any
// divergence prints a first-divergence report (with the surrounding event
// window) and the process exits nonzero.
func runVerify(entries []prefetch.CatalogEntry, p wl.Params, cores int, warm, measure uint64, seeds int) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	failed := false
	for _, e := range entries {
		for s := int64(1); s <= int64(seeds); s++ {
			_, rep, err := difftest.Run(ctx, difftest.Options{
				Workload:              p,
				Seed:                  s,
				NewDesign:             e.New,
				PrefetchBufferEntries: e.PrefetchBufferEntries,
				Cores:                 cores,
				Warm:                  warm,
				Measure:               measure,
				Strict:                true,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dncsim: verify %s seed %d: %v\n", e.Name, s, err)
				os.Exit(1)
			}
			fmt.Println(rep)
			failed = failed || !rep.Ok()
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "dncsim: verification FAILED — the timing simulator diverged from the reference model")
		os.Exit(1)
	}
	fmt.Println("verification passed: all runs equivalent to the reference model")
}

func report(r sim.Result) {
	m := &r.M
	fmt.Printf("%s on %s (%d cores)\n", r.Design, r.Workload, len(r.PerCore))
	fmt.Printf("  IPC                %.3f\n", m.IPC())
	fmt.Printf("  L1i miss MPKI      %.1f (seq %.0f%%, late %d)\n",
		m.MPKI(m.DemandMisses), 100*m.SeqMissFraction(), m.LateMisses)
	fmt.Printf("  branch MPKI        %.1f mispredict, %.1f BTB-miss\n",
		m.MPKI(m.Mispredicts), m.MPKI(m.BTBMissEvents))
	fmt.Printf("  prefetches         %d issued, %d useful, %d evicted unused\n",
		m.PrefetchesIssued, m.UsefulPrefetches, m.UselessEvicts)
	fmt.Printf("  CMAL               %.1f%%\n", 100*m.CMAL())
	fmt.Printf("  avg LLC latency    %.1f cycles\n", m.AvgLLCLatency())
	total := float64(m.Cycles)
	fmt.Printf("  stall cycles       icache %.1f%%, ftq %.1f%%, btb %.1f%%, mispredict %.1f%%, backend %.1f%%\n",
		100*float64(m.StallICache)/total, 100*float64(m.StallFTQ)/total,
		100*float64(m.StallBTB)/total, 100*float64(m.StallMispred)/total,
		100*float64(m.StallBackend)/total)
	fmt.Printf("  design storage     %.1f KB\n", float64(r.StorageBits)/8/1024)
}

// reportObs renders the observability snapshot: the per-cause cycle
// partition (which sums to 100% by the conservation invariant) and the
// latency/occupancy histogram summaries.
func reportObs(r sim.Result) {
	if r.Obs == nil {
		return
	}
	m := &r.M
	fmt.Println("\ncycle attribution (all cores, conservation-checked):")
	for cause, cycles := range m.StallBreakdown() {
		if cycles == 0 {
			continue
		}
		fmt.Printf("  %-20s %6.2f%%  (%d cycles)\n",
			obs.StallCause(cause), 100*float64(cycles)/float64(m.Cycles), cycles)
	}
	fmt.Println("histograms:")
	for _, h := range r.Obs.Hists {
		fmt.Printf("  %s\n", h)
	}
	for _, c := range r.Obs.Counters {
		if c.Value > 0 {
			fmt.Printf("  %s=%d\n", c.Name, c.Value)
		}
	}
}
