module dnc

go 1.22
