package dncfront

import "testing"

func TestWorkloadsAndDesignsListed(t *testing.T) {
	if len(Workloads()) != 7 {
		t.Fatalf("workloads = %v", Workloads())
	}
	ds := Designs()
	want := map[string]bool{"baseline": true, "SN4L+Dis+BTB": true, "shotgun": true}
	found := 0
	for _, d := range ds {
		if want[d] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("designs missing: %v", ds)
	}
}

func TestNewDesign(t *testing.T) {
	d, err := NewDesign("SN4L+Dis+BTB")
	if err != nil || d.Name() != "SN4L+Dis+BTB" {
		t.Fatalf("NewDesign: %v, %v", d, err)
	}
	if _, err := NewDesign("nope"); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestRunAndCompare(t *testing.T) {
	p := Workload("Web-Frontend")
	o := Options{Cores: 2, WarmCycles: 20_000, MeasureCycles: 20_000}
	r, err := Run(p, "SN4L", o)
	if err != nil {
		t.Fatal(err)
	}
	if r.M.Retired == 0 {
		t.Fatal("no progress")
	}
	c, err := Compare(p, "SN4L", o)
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup <= 0.5 || c.Speedup > 3 {
		t.Fatalf("speedup = %.3f implausible", c.Speedup)
	}
	if c.Baseline.M.IPC() == 0 {
		t.Fatal("baseline empty")
	}
	if _, err := Run(p, "nope", o); err == nil {
		t.Fatal("unknown design accepted by Run")
	}
	if _, err := Compare(p, "nope", o); err == nil {
		t.Fatal("unknown design accepted by Compare")
	}
}

func TestCustomWorkloadParams(t *testing.T) {
	p := WorkloadParams{
		Name:           "custom",
		FootprintBytes: 256 << 10,
		GenSeed:        42,
		LoadFrac:       0.2,
		StoreFrac:      0.1,
	}
	r, err := Run(p, "baseline", Options{Cores: 1, WarmCycles: 10_000, MeasureCycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.M.Retired == 0 {
		t.Fatal("custom workload made no progress")
	}
}
