package dncfront_test

import (
	"fmt"
	"log"

	"dnc/pkg/dncfront"
)

// ExampleWorkloads lists the calibrated server workload presets.
func ExampleWorkloads() {
	for _, name := range dncfront.Workloads() {
		fmt.Println(name)
	}
	// Output:
	// OLTP-DB-A
	// OLTP-DB-B
	// Media-Streaming
	// Web-Apache
	// Web-Zeus
	// Web-Frontend
	// Web-Search
}

// ExampleNewDesign constructs the paper's proposed design and reports its
// per-core metadata budget.
func ExampleNewDesign() {
	d, err := dncfront.NewDesign("SN4L+Dis+BTB")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s needs %.1f KB of metadata\n", d.Name(), float64(d.StorageBits())/8/1024)
	// Output:
	// SN4L+Dis+BTB needs 7.3 KB of metadata
}

// ExampleCompare runs a small simulation and derives the paper's
// cross-run metrics. Numeric results depend on the configuration, so the
// example only demonstrates the call shape.
func ExampleCompare() {
	params := dncfront.Workload("Web-Frontend")
	cmp, err := dncfront.Compare(params, "SN4L", dncfront.Options{
		Cores: 1, WarmCycles: 10_000, MeasureCycles: 10_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp.Speedup > 0.5, cmp.Result.M.Retired > 0)
	// Output:
	// true true
}
