// Package dncfront is the public API of the frontend-prefetching library:
// a reproduction of "Divide and Conquer Frontend Bottleneck" (Ansari,
// Lotfi-Kamran, Sarbazi-Azad; ISCA 2020).
//
// The package wraps the internal simulator behind a small surface:
//
//   - Workloads lists the seven calibrated server-workload models; Workload
//     returns one preset, and WorkloadParams can be built directly for
//     custom workloads.
//   - NewDesign constructs any evaluated frontend design by name — the
//     paper's SN4L+Dis+BTB and its components, the sequential family, and
//     the Confluence/Boomerang/Shotgun competitors.
//   - Run simulates a workload under a design on a 16-tile CMP and returns
//     measured metrics; Compare also runs the no-prefetch baseline and
//     derives speedup, miss coverage, FSCR, and traffic ratios.
//
// See examples/ for runnable walk-throughs and cmd/dncbench for the full
// paper evaluation.
package dncfront

import (
	"fmt"
	"sort"

	wl "dnc/internal/cfg"
	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
	"dnc/internal/workloads"
)

// WorkloadParams configures a synthetic server workload; see the field
// documentation in the underlying type for every knob.
type WorkloadParams = wl.Params

// Metrics are the per-run measurement counters.
type Metrics = core.Metrics

// Result is one simulation outcome.
type Result = sim.Result

// Design is a pluggable frontend configuration (BTB organization plus
// prefetcher).
type Design = prefetch.Design

// ISA modes for WorkloadParams.Mode.
const (
	FixedLength    = isa.Fixed
	VariableLength = isa.Variable
)

// Workloads returns the names of the seven calibrated workload presets, in
// the paper's reporting order.
func Workloads() []string {
	out := make([]string, len(workloads.Names))
	copy(out, workloads.Names)
	return out
}

// Workload returns a preset workload's parameters in fixed-length mode.
func Workload(name string) WorkloadParams {
	return workloads.Params(name, isa.Fixed)
}

// designFactories maps public design names to constructors and the core
// options the design requires.
var designFactories = map[string]struct {
	nd  func() Design
	pfb int
}{
	"baseline": {func() Design { return prefetch.NewBaseline(2048) }, 0},
	"NL":       {func() Design { return prefetch.NewNXL(1, 2048) }, 0},
	"N2L":      {func() Design { return prefetch.NewNXL(2, 2048) }, 0},
	"N4L":      {func() Design { return prefetch.NewNXL(4, 2048) }, 0},
	"N8L":      {func() Design { return prefetch.NewNXL(8, 2048) }, 0},
	"SN4L":     {func() Design { return prefetch.NewSN4L(16<<10, 2048) }, 0},
	"Dis":      {func() Design { return prefetch.NewDis(4<<10, 4, 2048) }, 0},
	"SN4L+Dis": {func() Design {
		return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
	}, 0},
	"SN4L+Dis+BTB": {func() Design {
		c := prefetch.DefaultProactiveConfig()
		c.WithBTBPrefetch = true
		return prefetch.NewProactive(c)
	}, 0},
	"NL-miss":       {func() Design { return prefetch.NewNXLTriggered(1, 2048, prefetch.TriggerMiss) }, 0},
	"NL-tagged":     {func() Design { return prefetch.NewNXLTriggered(1, 2048, prefetch.TriggerTagged) }, 0},
	"RDIP":          {func() Design { return prefetch.NewRDIP(1024, 2048) }, 0},
	"PIF":           {func() Design { return prefetch.NewPIF(prefetch.DefaultPIFConfig()) }, 0},
	"discontinuity": {func() Design { return prefetch.NewDiscontinuity(8<<10, 8, 2048) }, 0},
	"confluence":    {func() Design { return prefetch.NewConfluence(prefetch.DefaultConfluenceConfig()) }, 0},
	"boomerang":     {func() Design { return prefetch.NewBoomerang(prefetch.DefaultBoomerangConfig()) }, 0},
	"shotgun":       {func() Design { return prefetch.NewShotgun(prefetch.DefaultShotgunDesignConfig()) }, 64},
}

// Designs returns the available design names, sorted.
func Designs() []string {
	out := make([]string, 0, len(designFactories))
	for n := range designFactories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewDesign constructs a fresh instance of a named design. One instance
// drives one core; construct one per simulated core.
func NewDesign(name string) (Design, error) {
	f, ok := designFactories[name]
	if !ok {
		return nil, fmt.Errorf("dncfront: unknown design %q (have %v)", name, Designs())
	}
	return f.nd(), nil
}

// Options configure a simulation run.
type Options struct {
	// Cores is the number of active cores on the 4x4 mesh (default 16).
	Cores int
	// WarmCycles and MeasureCycles set the two windows (default 200K each,
	// the paper's methodology).
	WarmCycles, MeasureCycles uint64
	// Seed selects the measurement sample (default 1).
	Seed int64
}

func (o Options) fill() Options {
	if o.Cores == 0 {
		o.Cores = 16
	}
	if o.WarmCycles == 0 {
		o.WarmCycles = 200_000
	}
	if o.MeasureCycles == 0 {
		o.MeasureCycles = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Run simulates the workload under the named design.
func Run(params WorkloadParams, design string, o Options) (Result, error) {
	f, ok := designFactories[design]
	if !ok {
		return Result{}, fmt.Errorf("dncfront: unknown design %q (have %v)", design, Designs())
	}
	o = o.fill()
	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = f.pfb
	return sim.Run(sim.RunConfig{
		Workload:      params,
		NewDesign:     f.nd,
		Cores:         o.Cores,
		WarmCycles:    o.WarmCycles,
		MeasureCycles: o.MeasureCycles,
		Seed:          o.Seed,
		Core:          cc,
	}), nil
}

// Comparison holds a design's result with baseline-derived metrics.
type Comparison struct {
	Result   Result
	Baseline Result
	// Speedup is IPC relative to the no-prefetch baseline.
	Speedup float64
	// MissCoverage is the fraction of baseline L1i misses eliminated.
	MissCoverage float64
	// SeqMissCoverage restricts coverage to sequential misses.
	SeqMissCoverage float64
	// FSCR is the frontend stall cycle reduction.
	FSCR float64
	// BandwidthRatio is L1i external traffic relative to the baseline.
	BandwidthRatio float64
	// LookupRatio is L1i tag lookups relative to the baseline.
	LookupRatio float64
}

// Compare runs both the design and the baseline and derives the paper's
// cross-run metrics.
func Compare(params WorkloadParams, design string, o Options) (Comparison, error) {
	r, err := Run(params, design, o)
	if err != nil {
		return Comparison{}, err
	}
	base, err := Run(params, "baseline", o)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Result:          r,
		Baseline:        base,
		Speedup:         sim.Speedup(r, base),
		MissCoverage:    sim.MissCoverage(r, base),
		SeqMissCoverage: sim.SeqMissCoverage(r, base),
		FSCR:            sim.FSCR(r, base),
		BandwidthRatio:  sim.BandwidthRatio(r, base),
		LookupRatio:     sim.LookupRatio(r, base),
	}, nil
}
