// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment through
// internal/bench and reports its headline numbers as custom metrics, so the
// output of
//
//	go test -bench=. -benchmem
//
// is a machine-readable form of the paper's results. Experiment tables are
// logged with -v. Runs share a process-wide harness cache, so the suite
// costs one simulation per distinct configuration regardless of b.N.
//
// Scale defaults to the quick configuration (16 cores, shortened windows);
// set DNC_BENCH_SCALE=paper for the paper-scale 200K+200K methodology.
package main

import (
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"dnc/internal/bench"
)

var (
	harnessOnce sync.Once
	harness     *bench.Harness
)

func sharedHarness() *bench.Harness {
	harnessOnce.Do(func() {
		cfg := bench.Quick()
		if os.Getenv("DNC_BENCH_SCALE") == "paper" {
			cfg = bench.Paper()
		}
		harness = bench.New(cfg)
	})
	return harness
}

// runExperiment executes the experiment once per benchmark iteration (the
// harness cache makes repeats free) and reports its headline metrics.
func runExperiment(b *testing.B, f func(*bench.Harness) bench.Experiment) {
	b.Helper()
	h := sharedHarness()
	var e bench.Experiment
	for i := 0; i < b.N; i++ {
		e = f(h)
	}
	keys := make([]string, 0, len(e.Headline))
	for k := range e.Headline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// Benchmark metric units must not contain whitespace.
		unit := strings.ReplaceAll(k, " ", "-")
		b.ReportMetric(e.Headline[k], unit)
	}
	b.Log("\n" + e.Title + "\n" + e.PaperNote + "\n" + e.Table.String())
}

func BenchmarkFig01FootprintMissRatio(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig01)
}

func BenchmarkTable1EmptyFTQStalls(b *testing.B) {
	runExperiment(b, (*bench.Harness).Table1)
}

func BenchmarkFig02SequentialMissFraction(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig02)
}

func BenchmarkFig03NLSeqCoverage(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig03)
}

func BenchmarkFig04CMALSequentialDepth(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig04)
}

func BenchmarkFig05UselessPrefetchSideEffects(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig05)
}

func BenchmarkFig06NextBlockPredictability(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig06)
}

func BenchmarkFig07DiscontinuityPredictability(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig07)
}

func BenchmarkFig08BranchesPerBlock(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig08)
}

func BenchmarkFig09BFsPerSet(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig09)
}

func BenchmarkTable2StorageComparison(b *testing.B) {
	runExperiment(b, (*bench.Harness).Table2)
}

func BenchmarkFig11TableSizeSweep(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig11)
}

func BenchmarkFig12TaggingPolicy(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig12)
}

func BenchmarkFig13CMALProposed(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig13)
}

func BenchmarkFig14CacheLookups(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig14)
}

func BenchmarkFig15FSCR(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig15)
}

func BenchmarkFig16Speedup(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig16)
}

func BenchmarkFig17Breakdown(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig17)
}

func BenchmarkFig18BTBSizeSweep(b *testing.B) {
	runExperiment(b, (*bench.Harness).Fig18)
}

func BenchmarkSecJDVLLC(b *testing.B) {
	runExperiment(b, (*bench.Harness).SecJ)
}

func BenchmarkAblationChainDepth(b *testing.B) {
	runExperiment(b, (*bench.Harness).AblationDepth)
}

func BenchmarkAblationRLUSize(b *testing.B) {
	runExperiment(b, (*bench.Harness).AblationRLU)
}

func BenchmarkAblationQueueDepth(b *testing.B) {
	runExperiment(b, (*bench.Harness).AblationQueueDepth)
}
